// Batched-replay throughput benchmark: a cold-cache, Fig.-12-style
// neighborhood sweep — many (issue, ROB, cache-split) variants of one
// design around a fixed core count — simulated per point (each point
// regenerating its own trace streams) vs batched over the shared chunk
// store (each trace chunk generated once per batch unit and consumed by
// every member in lockstep). Both paths run at one thread with the sim
// cache off, so the measured ratio isolates the batching win itself:
// trace regeneration avoided plus chunk reuse while hot in cache.
//
// Results are identity-checked bitwise before timing (the randomized proof
// lives in `c2b check --family batch`). Emits BENCH_batched_replay.json
// for the perf-smoke CI gate, which enforces floors on both
// accesses_per_sec and speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "c2b/aps/dse.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

struct Scenario {
  std::string name;
  DseContext context;
  std::vector<std::vector<double>> points;
};

/// `workload` swept over the full issue/ROB/cache-split cross around the
/// chip's center design at N cores: the shape run_aps simulates after
/// analytic narrowing, scaled up to a radius-2-style neighborhood. Every
/// point shares the fixed N, so the whole sweep is one trace-equivalence
/// class. The workloads use big-footprint knobs (large pointer-chase /
/// particle arrays) with APS-sized simulation windows, so per-point replay
/// pays the O(working set) stream setup — permutation and shuffle builds —
/// for all (1 + N) streams at every point, which is exactly the input
/// production the batched path performs once per equivalence-class unit.
Scenario neighborhood_sweep(const std::string& name, WorkloadSpec workload, double n_cores,
                            std::uint64_t instructions0) {
  Scenario s;
  s.name = name;
  s.context.workload = std::move(workload);
  s.context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                          .associativity = 4};
  s.context.base.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                          .associativity = 8};
  s.context.instructions0 = instructions0;
  s.context.per_core_cap = 30'000;
  // Budget sized so the whole (a1, a2) cross is feasible at this N.
  s.context.chip.total_area = n_cores * 5.5 + 1.0;
  s.context.chip.shared_area = 1.0;

  for (const double a1 : {0.5, 0.75, 1.0})
    for (const double a2 : {1.0, 1.5})
      for (const double issue : {2.0, 4.0})
        for (const double rob : {32.0, 64.0, 128.0}) {
          const std::vector<double> point{2.0, a1, a2, n_cores, issue, rob};
          if (design_feasible(s.context, point)) s.points.push_back(point);
        }
  return s;
}

struct Measurement {
  std::string name;
  std::size_t points = 0;
  std::uint64_t accesses = 0;
  double per_point_ms = 0.0;
  double batched_ms = 0.0;
  double speedup = 0.0;
  double accesses_per_sec = 0.0;  ///< batched-path demand-access throughput
  std::uint64_t regen_avoided_accesses = 0;
};

constexpr int kReps = 3;

int run_scenario(const Scenario& scenario, Measurement& m) {
  m.name = scenario.name;
  m.points = scenario.points.size();
  if (scenario.points.empty()) {
    std::fprintf(stderr, "%s: no feasible points\n", scenario.name.c_str());
    return 1;
  }

  // Cold cache everywhere: the bench isolates batching, not memoization.
  exec::set_thread_count(1);
  exec::SimCache::global().set_enabled(false);

  // Untimed warmup + bitwise identity check.
  std::vector<double> reference_times;
  std::vector<std::uint64_t> reference_accesses;
  for (const std::vector<double>& point : scenario.points) {
    std::uint64_t accesses = 0;
    reference_times.push_back(simulate_design_time(scenario.context, point, &accesses));
    reference_accesses.push_back(accesses);
    m.accesses += accesses;
  }
  BatchReplayStats stats;
  const std::vector<BatchSimOutcome> outcomes =
      simulate_design_times_batched(scenario.context, scenario.points, &stats);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!bits_equal(outcomes[i].time, reference_times[i]) ||
        outcomes[i].memory_accesses != reference_accesses[i]) {
      std::fprintf(stderr, "%s: batched result diverged from per-point at point %zu\n",
                   scenario.name.c_str(), i);
      return 1;
    }
  }
  m.regen_avoided_accesses = stats.regen_avoided_accesses;

  m.per_point_ms = 1e300;
  m.batched_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (const std::vector<double>& point : scenario.points)
      (void)simulate_design_time(scenario.context, point, nullptr);
    m.per_point_ms = std::min(m.per_point_ms, wall_ms(start));
    start = std::chrono::steady_clock::now();
    (void)simulate_design_times_batched(scenario.context, scenario.points, nullptr);
    m.batched_ms = std::min(m.batched_ms, wall_ms(start));
  }
  m.speedup = m.batched_ms > 0.0 ? m.per_point_ms / m.batched_ms : 0.0;
  m.accesses_per_sec =
      m.batched_ms > 0.0 ? static_cast<double>(m.accesses) / (m.batched_ms / 1e3) : 0.0;
  return 0;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  // Fig. 12 case study (fluidanimate-like, N = 4), the Fig. 7
  // dependent-chase extreme (N = 8), and a wide-chip sweep (N = 16) whose
  // 36-point class splits into 16+16+4 power-of-two batch units — the
  // vectorized kernel's best case. Working-set knobs are sized so the
  // per-stream setup cost is material next to the APS simulation window.
  std::vector<Scenario> scenarios{
      neighborhood_sweep("neighborhood_n4", make_fluidanimate_like_workload(1u << 19), 4.0,
                         /*instructions0=*/6'000),
      neighborhood_sweep("neighborhood_n8", make_pointer_chase_workload(1u << 20), 8.0,
                         /*instructions0=*/6'000),
      neighborhood_sweep("neighborhood_n16", make_fluidanimate_like_workload(1u << 19), 16.0,
                         /*instructions0=*/6'000),
  };
  std::vector<Measurement> measurements(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (run_scenario(scenarios[i], measurements[i]) != 0) return 1;

  Table table({"scenario", "points", "accesses/s (batched)", "per-point (ms)",
               "batched (ms)", "speedup", "regen avoided"},
              2);
  for (const Measurement& m : measurements)
    table.add_row({m.name, static_cast<std::int64_t>(m.points), m.accesses_per_sec,
                   m.per_point_ms, m.batched_ms, m.speedup,
                   static_cast<std::int64_t>(m.regen_avoided_accesses)});
  emit("Batched replay vs per-point simulation (cold cache, 1 thread)", table,
       "batched_replay");

  if (std::FILE* out = std::fopen("BENCH_batched_replay.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"batched_replay\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const Measurement& m = measurements[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"points\": %zu, \"accesses\": %llu, "
                   "\"per_point_ms\": %.3f, \"batched_ms\": %.3f, \"speedup\": %.3f, "
                   "\"accesses_per_sec\": %.1f, \"regen_avoided_accesses\": %llu}%s\n",
                   m.name.c_str(), m.points, static_cast<unsigned long long>(m.accesses),
                   m.per_point_ms, m.batched_ms, m.speedup, m.accesses_per_sec,
                   static_cast<unsigned long long>(m.regen_avoided_accesses),
                   i + 1 < measurements.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_batched_replay.json\n");
  }
  return run_benchmarks(argc, argv);
}
