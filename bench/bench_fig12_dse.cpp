// Fig. 12 reproduction: the number of simulations needed to navigate the
// six-parameter design space (A0, A1, A2, N, issue width, ROB size) for a
// fluidanimate-like workload, by three methods:
//
//   * full factorial traversal (the paper's 10^6-point, 128-Xeon/4-week
//     ground truth — here a scaled grid traversed exactly),
//   * ANN predictive modeling (Ipek et al. [2]; the paper reports 613
//     simulations to match APS's accuracy),
//   * APS (the paper reports 100 simulations and a 5.96% error).
//
// Absolute counts scale with our grid; the *shape* to check is
// full >> ANN > APS with APS's chosen design within a few percent of the
// true optimum, and an analytic narrowing of the four C²-Bound axes
// (A0, A1, A2, N) — 10^4 of the paper's 10^6 configurations.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "c2b/aps/aps.h"

namespace c2b::bench {
namespace {

DseAxes paper_like_axes() {
  // 3-4 values per axis keeps the exact full-factorial ground truth
  // traversable on one machine (the paper used 10 per axis and 128 Xeons
  // for 4 weeks); the APS narrowing argument is per-axis, so the factor
  // scales with resolution, not with this choice.
  DseAxes axes;
  axes.a0 = {0.5, 1.0, 2.0};
  axes.a1 = {0.25, 0.5, 1.0};
  axes.a2 = {0.5, 1.0, 2.0};
  axes.n = {1, 2, 4, 8};
  axes.issue = {2, 4, 8};
  axes.rob = {32, 128, 256};
  return axes;
}

DseContext make_context() {
  DseContext context;
  context.base.core.issue_width = 4;
  context.base.core.rob_size = 128;
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.workload = make_fluidanimate_like_workload(1 << 14);
  context.instructions0 = 16'000;
  context.per_core_cap = 8'000;
  // Chip sized so the grid's area axes are the buildable range: at N = 8
  // only lean cores fit, at N = 1 everything does — Eq. (12) is the tension
  // between the N axis and the per-core area axes.
  context.chip.total_area = 26.0;
  context.chip.shared_area = 2.0;
  return context;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const DseContext context = make_context();
  const GridSpace space = make_design_space(paper_like_axes());
  std::printf("design space: %zu points (paper: 10^6 at 10 values/axis)\n", space.size());

  std::printf("running full factorial ground truth (%zu simulations)...\n", space.size());
  const FullDseResult truth = run_full_dse(context, space);
  const auto best_point = space.point(truth.best_index);
  std::printf("true optimum: a0=%.2f a1=%.2f a2=%.2f N=%.0f issue=%.0f rob=%.0f "
              "(%.1f cycles/work; %zu of %zu designs feasible)\n",
              best_point[kAxisA0], best_point[kAxisA1], best_point[kAxisA2],
              best_point[kAxisN], best_point[kAxisIssue], best_point[kAxisRob],
              truth.best_time, truth.feasible_count, space.size());

  ApsOptions aps_options;
  aps_options.characterize.instructions = 120'000;
  aps_options.characterize.use_simpoints = true;
  aps_options.characterize.simpoint.interval_length = 20'000;
  const ApsResult aps = run_aps(context, space, aps_options);
  const double aps_regret = design_regret(truth, aps.best_index);

  const AnnDseResult ann = run_ann_dse(space, truth, std::max(aps_regret, 0.005));

  Table table({"method", "simulations", "chosen-design error vs optimum (%)",
               "space narrowing"},
              4);
  table.add_row({std::string("full factorial"),
                 static_cast<std::int64_t>(truth.simulations), 0.0, std::string("1x")});
  table.add_row({std::string("ANN (to match APS accuracy)"),
                 static_cast<std::int64_t>(ann.simulations),
                 100.0 * design_regret(truth, ann.best_index), std::string("-")});
  table.add_row({std::string("APS (C2-Bound analytic + local sim)"),
                 static_cast<std::int64_t>(aps.simulations), 100.0 * aps_regret,
                 std::to_string(static_cast<int>(aps.narrowing_factor)) + "x"});
  emit("Fig. 12: number of simulations by DSE method (fluidanimate-like)", table,
       "fig12_dse");

  const auto analytic_axes_count = paper_like_axes().a0.size() * paper_like_axes().a1.size() *
                                   paper_like_axes().a2.size() * paper_like_axes().n.size();
  std::printf(
      "[shape] APS removed the (A0, A1, A2, N) axes analytically: %zu combinations\n"
      "        never simulated (paper: 10^4 of 10^6 -> 'four orders of magnitude').\n"
      "[shape] APS chose N=%g, a0=%.2f, a1=%.2f, a2=%.2f; analytic C-AMAT %.2f,\n"
      "        concurrency C=%.2f, case: %s.\n"
      "[shape] APS error %.2f%% (paper: 5.96%%); ANN needed %zu sims vs APS %zu\n"
      "        (paper: 613 vs 100 => APS uses %.1f%% of ANN's simulation count;\n"
      "        ours: %.1f%%).\n",
      analytic_axes_count, aps.analytic.best.design.n_cores, aps.analytic.best.design.a0,
      aps.analytic.best.design.a1, aps.analytic.best.design.a2, aps.analytic.best.camat,
      aps.analytic.best.concurrency_c,
      aps.analytic.opt_case == OptimizationCase::kMaximizeThroughput ? "maximize W/T"
                                                                     : "minimize T",
      100.0 * aps_regret, ann.simulations, aps.simulations, 100.0 * 100.0 / 613.0,
      ann.simulations == 0 ? 0.0
                           : 100.0 * static_cast<double>(aps.simulations) /
                                 static_cast<double>(ann.simulations));
  return run_benchmarks(argc, argv);
}
