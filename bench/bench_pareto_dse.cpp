// Pareto-DSE overhead benchmark: the same constrained factorial sweep run
// through plain run_full_dse (best-point only) and run_pareto_dse
// (frontier + per-constraint accounting). Both share the batched/SIMD
// replay engine, so the measured delta is exactly the Pareto layer: the
// analytic power/area attachment, the O(n^2) dominance filter, and the
// per-constraint usage pass. Cold cache and one thread for both paths so
// memoization and scheduling never blur the A/B.
//
// The two runs are identity-checked first — the frontier must contain the
// plain optimum's grid point with a bitwise-equal time — then timed, and
// the overhead is emitted as `overhead_pct` in BENCH_pareto_dse.json for
// the perf-smoke CI gate (baseline caps it via `max_overhead_pct`).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

struct Scenario {
  std::string name;
  DseContext context;
  GridSpace space;
};

/// A constrained Fig.-12-style study: the default six-axis grid with
/// power and bandwidth budgets tight enough that every constraint kind
/// participates in the filter, on an APS-sized simulation window.
Scenario constrained_study(const std::string& name, WorkloadSpec workload,
                           double power_budget, double bw_budget) {
  Scenario s;
  s.name = name;
  s.context.workload = std::move(workload);
  s.context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                          .associativity = 4};
  s.context.base.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                          .associativity = 8};
  s.context.instructions0 = 6'000;
  s.context.per_core_cap = 3'000;
  s.context.chip.total_area = 40.0;
  s.context.chip.shared_area = 2.0;
  s.context.power_budget = power_budget;
  s.context.bw_budget = bw_budget;
  s.space = make_design_space(DseAxes{});
  return s;
}

struct Measurement {
  std::string name;
  std::size_t grid_points = 0;
  std::size_t feasible = 0;
  std::size_t frontier = 0;
  double plain_ms = 0.0;
  double pareto_ms = 0.0;
  double overhead_pct = 0.0;
};

constexpr int kReps = 3;

int run_scenario(const Scenario& scenario, Measurement& m) {
  m.name = scenario.name;

  // Cold cache, one thread: isolate the frontier layer itself.
  exec::set_thread_count(1);
  exec::SimCache::global().set_enabled(false);

  // Untimed warmup + identity check: the frontier must carry the plain
  // optimum at a bitwise-equal time (it is feasible and time-minimal, so
  // nothing can dominate it).
  const FullDseResult plain = run_full_dse(scenario.context, scenario.space);
  const ParetoDseResult pareto = run_pareto_dse(scenario.context, scenario.space);
  m.grid_points = pareto.grid_points;
  m.feasible = pareto.feasible_count;
  m.frontier = pareto.frontier.size();
  if (plain.feasible_count != pareto.feasible_count) {
    std::fprintf(stderr, "%s: feasible counts diverged (%zu vs %zu)\n",
                 scenario.name.c_str(), plain.feasible_count, pareto.feasible_count);
    return 1;
  }
  const auto best = std::find_if(
      pareto.frontier.begin(), pareto.frontier.end(),
      [&](const FrontierPoint& fp) { return fp.flat_index == plain.best_index; });
  if (best == pareto.frontier.end() || !bits_equal(best->time, plain.best_time)) {
    std::fprintf(stderr, "%s: plain optimum missing from the frontier\n",
                 scenario.name.c_str());
    return 1;
  }

  m.plain_ms = 1e300;
  m.pareto_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    (void)run_full_dse(scenario.context, scenario.space);
    m.plain_ms = std::min(m.plain_ms, wall_ms(start));
    start = std::chrono::steady_clock::now();
    (void)run_pareto_dse(scenario.context, scenario.space);
    m.pareto_ms = std::min(m.pareto_ms, wall_ms(start));
  }
  m.overhead_pct =
      m.plain_ms > 0.0 ? (m.pareto_ms - m.plain_ms) / m.plain_ms * 100.0 : 0.0;
  return 0;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  // One memory-bound and one compute-lean study over the default grid;
  // budgets chosen so power and bandwidth both reject real slices of the
  // factorial space (the area member always participates).
  std::vector<Scenario> scenarios{
      constrained_study("pareto_fluidanimate", make_fluidanimate_like_workload(1u << 16),
                        /*power_budget=*/30.0, /*bw_budget=*/500.0),
      constrained_study("pareto_stencil", make_stencil_workload(96),
                        /*power_budget=*/30.0, /*bw_budget=*/500.0),
  };
  std::vector<Measurement> measurements(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (run_scenario(scenarios[i], measurements[i]) != 0) return 1;

  Table table({"scenario", "grid", "feasible", "frontier", "plain (ms)",
               "pareto (ms)", "overhead %"},
              2);
  for (const Measurement& m : measurements)
    table.add_row({m.name, static_cast<std::int64_t>(m.grid_points),
                   static_cast<std::int64_t>(m.feasible),
                   static_cast<std::int64_t>(m.frontier), m.plain_ms, m.pareto_ms,
                   m.overhead_pct});
  emit("Pareto-frontier DSE vs plain DSE (cold cache, 1 thread)", table, "pareto_dse");

  if (std::FILE* out = std::fopen("BENCH_pareto_dse.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"pareto_dse\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const Measurement& m = measurements[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"grid_points\": %zu, \"feasible\": %zu, "
                   "\"frontier\": %zu, \"plain_ms\": %.3f, \"pareto_ms\": %.3f, "
                   "\"overhead_pct\": %.3f}%s\n",
                   m.name.c_str(), m.grid_points, m.feasible, m.frontier, m.plain_ms,
                   m.pareto_ms, m.overhead_pct, i + 1 < measurements.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_pareto_dse.json\n");
  }
  return run_benchmarks(argc, argv);
}
