// Component micro-benchmarks: throughput of every substrate the
// reproduction is built on. These are the numbers that determine how big a
// design space the APS/full-factorial machinery can traverse per second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "c2b/ann/mlp.h"
#include "c2b/aps/dse.h"
#include "c2b/common/rng.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/linalg/matrix.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/cache/cache.h"
#include "c2b/sim/dram/dram.h"
#include "c2b/sim/noc/noc.h"
#include "c2b/sim/system/system.h"
#include "c2b/solver/minimize.h"
#include "c2b/solver/newton.h"
#include "c2b/trace/generators.h"
#include "c2b/trace/reuse.h"
#include "obs_overhead_kernel.h"

namespace c2b {
namespace {

// ---------------------------------------------------------------------------
// Cache substrate

void bm_cache_probe_hit(benchmark::State& state) {
  sim::CacheArray cache({.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8});
  for (std::uint64_t line = 0; line < 512; ++line) cache.fill(line * 64);
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(address));
    address = (address + 64) % (512 * 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_cache_probe_hit);

void bm_cache_fill_evict(benchmark::State& state) {
  sim::CacheArray cache({.size_bytes = 8 * 1024, .line_bytes = 64, .associativity = 4});
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(address));
    address += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_cache_fill_evict);

// A/B: per-key SimCache::find vs the bulk find_many used by the DSE
// cache-peel loop. Arg(0) probes key by key (kShardCount lock takes per
// batch-sized slice in the worst case), Arg(1) probes the whole batch in
// one call (one lock take per shard). Same keys, same hit pattern.
void bm_simcache_probe_batch(benchmark::State& state) {
  exec::SimCache cache(1 << 12);
  constexpr std::size_t kBatch = 256;
  std::vector<std::string> keys;
  keys.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    std::string key = "n=4 a0=1 a1=0.5 a2=1 probe=";
    key += std::to_string(i);
    keys.push_back(key);
    if (i % 2 == 0) cache.insert(key, {static_cast<double>(i), i});  // 50% hits
  }
  const bool bulk = state.range(0) != 0;
  for (auto _ : state) {
    if (bulk) {
      benchmark::DoNotOptimize(cache.find_many(keys));
    } else {
      for (const std::string& key : keys) benchmark::DoNotOptimize(cache.find(key));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(bm_simcache_probe_batch)->Arg(0)->Arg(1);

void bm_mshr_request(benchmark::State& state) {
  sim::MshrFile mshr(16);
  std::uint64_t line = 0, cycle = 0;
  for (auto _ : state) {
    const auto grant = mshr.request(line, cycle);
    mshr.complete(line, grant.start_cycle + 100);
    ++line;
    cycle += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_mshr_request);

// ---------------------------------------------------------------------------
// DRAM / NoC

void bm_dram_access(benchmark::State& state) {
  sim::DramModel dram(sim::DramConfig{});
  Rng rng(1);
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dram.access(rng.uniform_below(1 << 20), cycle));
    cycle += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_dram_access);

void bm_noc_round_trip(benchmark::State& state) {
  sim::MeshNoc noc({.nodes = 64});
  std::uint32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(noc.round_trip(src, 63 - src));
    src = (src + 1) % 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_noc_round_trip);

// ---------------------------------------------------------------------------
// Trace substrate

void bm_zipf_generator(benchmark::State& state) {
  ZipfStreamGenerator::Params p;
  p.f_mem = 0.5;
  ZipfStreamGenerator generator(p);
  for (auto _ : state) benchmark::DoNotOptimize(generator.next().address);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_zipf_generator);

void bm_stack_distance(benchmark::State& state) {
  StackDistanceAnalyzer analyzer(64);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.access(rng.zipf(1 << 16, 0.8) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_stack_distance);

// ---------------------------------------------------------------------------
// End-to-end simulator

void bm_simulate_system(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  sim::SystemConfig config;
  config.hierarchy.cores = cores;
  config.hierarchy.noc.nodes = std::max(4u, cores);
  std::vector<Trace> traces;
  for (std::uint32_t c = 0; c < cores; ++c) {
    ZipfStreamGenerator::Params p;
    p.f_mem = 0.4;
    p.seed = c + 1;
    traces.push_back(ZipfStreamGenerator(p).generate(20'000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_system(config, traces).cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000 * cores);
}
BENCHMARK(bm_simulate_system)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Solvers

void bm_newton_2x2(benchmark::State& state) {
  ResidualFn f = [](const Vector& v) {
    return Vector{v[0] * v[0] + v[1] * v[1] - 4.0, v[0] * v[1] - 1.0};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(newton_solve(f, {2.0, 0.3}).residual_norm);
  }
}
BENCHMARK(bm_newton_2x2);

void bm_nelder_mead_rosenbrock(benchmark::State& state) {
  MultiFn rosenbrock = [](const Vector& v) {
    const double a = 1.0 - v[0];
    const double b = v[1] - v[0] * v[0];
    return a * a + 100.0 * b * b;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(nelder_mead_minimize(rosenbrock, {-1.2, 1.0}).value);
  }
  state.SetLabel("rosenbrock 2d");
}
BENCHMARK(bm_nelder_mead_rosenbrock)->Unit(benchmark::kMicrosecond);

void bm_lu_solve_8x8(benchmark::State& state) {
  Rng rng(9);
  Matrix a(8, 8);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) a(r, c) = rng.normal() + (r == c ? 4.0 : 0.0);
  const Vector b(8, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(lu_solve(a, b)[0]);
}
BENCHMARK(bm_lu_solve_8x8);

// ---------------------------------------------------------------------------
// ANN

void bm_mlp_train_epoch(benchmark::State& state) {
  MlpConfig config;
  config.layer_sizes = {6, 16, 16, 1};
  Mlp mlp(config);
  Rng rng(3);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 128; ++i) {
    Vector v(6);
    for (double& d : v) d = rng.uniform(-1, 1);
    x.push_back(v);
    y.push_back(v[0] * v[1] + v[2]);
  }
  mlp.fit(x, y, 1);  // fit scaler
  for (auto _ : state) benchmark::DoNotOptimize(mlp.train_epoch(x, y));
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(bm_mlp_train_epoch)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Telemetry overhead

void bm_obs_kernel(benchmark::State& state) {
  const auto variant = state.range(0);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    switch (variant) {
      case 0: acc = bench::obs_kernel_plain(4096); break;
      case 1: acc = bench::obs_kernel_compiled_out(4096); break;
      default: acc = bench::obs_kernel_instrumented(4096); break;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(variant == 0 ? "plain" : variant == 1 ? "compiled-out" : "instrumented");
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(bm_obs_kernel)->Arg(0)->Arg(1)->Arg(2);

void bm_simulate_system_obs(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  sim::SystemConfig config;
  config.hierarchy.cores = 4;
  config.hierarchy.noc.nodes = 4;
  std::vector<Trace> traces;
  for (std::uint32_t c = 0; c < 4; ++c) {
    ZipfStreamGenerator::Params p;
    p.f_mem = 0.4;
    p.seed = c + 1;
    traces.push_back(ZipfStreamGenerator(p).generate(20'000));
  }
  obs::set_enabled(obs_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_system(config, traces).cycles);
  }
  obs::set_enabled(true);
  state.SetLabel(obs_on ? "telemetry on" : "telemetry off");
}
BENCHMARK(bm_simulate_system_obs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Direct A/B measurement of the telemetry cost on the trace-driven
/// simulator hot loop, printed before the google-benchmark cases so the
/// headline number (<2% target) is always visible.
void report_obs_overhead() {
  sim::SystemConfig config;
  config.hierarchy.cores = 4;
  config.hierarchy.noc.nodes = 4;
  std::vector<Trace> traces;
  for (std::uint32_t c = 0; c < 4; ++c) {
    ZipfStreamGenerator::Params p;
    p.f_mem = 0.4;
    p.seed = c + 1;
    traces.push_back(ZipfStreamGenerator(p).generate(20'000));
  }

  using clock = std::chrono::steady_clock;
  auto run_once = [&] {
    const auto begin = clock::now();
    benchmark::DoNotOptimize(sim::simulate_system(config, traces).cycles);
    return std::chrono::duration<double>(clock::now() - begin).count();
  };

  // Warm up caches, registry slots, and trace buffers.
  obs::set_enabled(true);
  run_once();
  obs::set_enabled(false);
  run_once();

  // Interleave the two modes so frequency drift hits both equally; keep the
  // per-mode minimum (the classic noise-robust estimator).
  constexpr int kRounds = 15;
  double best_on = 1e9, best_off = 1e9;
  for (int r = 0; r < kRounds; ++r) {
    obs::set_enabled(true);
    best_on = std::min(best_on, run_once());
    obs::set_enabled(false);
    best_off = std::min(best_off, run_once());
  }
  obs::set_enabled(true);

  const double overhead = (best_on - best_off) / best_off * 100.0;
  std::printf("telemetry overhead on simulate_system (4 cores, 20k instr/core):\n");
  std::printf("  enabled  %.3f ms | runtime-disabled %.3f ms | overhead %+.2f%% (target < 2%%)\n",
              best_on * 1e3, best_off * 1e3, overhead);

  // Compile-time kill switch: the instrumented kernel built with
  // C2B_OBS_DISABLED must price like the uninstrumented one.
  auto time_kernel = [](std::uint64_t (*kernel)(std::size_t)) {
    constexpr std::size_t kIters = 1 << 22;
    double best = 1e9;
    for (int r = 0; r < 7; ++r) {
      const auto begin = clock::now();
      benchmark::DoNotOptimize(kernel(kIters));
      best = std::min(best, std::chrono::duration<double>(clock::now() - begin).count());
    }
    return best;
  };
  const double plain = time_kernel(bench::obs_kernel_plain);
  const double compiled_out = time_kernel(bench::obs_kernel_compiled_out);
  const double instrumented = time_kernel(bench::obs_kernel_instrumented);
  std::printf("  kernel: plain %.3f ms | compiled-out %.3f ms (%+.2f%%) | "
              "instrumented %.3f ms\n\n",
              plain * 1e3, compiled_out * 1e3, (compiled_out - plain) / plain * 100.0,
              instrumented * 1e3);

  // Flight-recorder A/B: the same batched sweep with and without an active
  // journal. The sim cache is cleared before every round so each run does
  // the full simulation work (a warm cache would peel everything and leave
  // nothing for the recorder to perturb).
  DseContext context;
  for (const WorkloadSpec& spec : workload_catalog())
    if (spec.name == "stencil") context.workload = spec;
  context.instructions0 = 20'000;
  context.per_core_cap = 5'000;
  context.chip.total_area = 9.0;
  context.chip.shared_area = 1.0;
  DseAxes axes;
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  std::vector<std::vector<double>> points;
  make_design_space(axes).for_each([&](std::size_t, const std::vector<double>& point) {
    if (design_feasible(context, point)) points.push_back(point);
  });

  const char* journal_path = "BENCH_obs_journal.tmp.jsonl";
  auto run_sweep = [&](bool with_journal) {
    exec::SimCache::global().clear();
    std::unique_ptr<obs::RunJournal> journal;
    if (with_journal) {
      journal = obs::RunJournal::open(journal_path);
      obs::set_active_journal(journal.get());
    }
    const auto begin = clock::now();
    benchmark::DoNotOptimize(simulate_design_times_batched(context, points).size());
    const double seconds = std::chrono::duration<double>(clock::now() - begin).count();
    obs::set_active_journal(nullptr);
    return seconds;
  };

  run_sweep(true);   // warm-up
  run_sweep(false);
  double sweep_on = 1e9, sweep_off = 1e9;
  for (int r = 0; r < 7; ++r) {
    sweep_on = std::min(sweep_on, run_sweep(true));
    sweep_off = std::min(sweep_off, run_sweep(false));
  }
  std::remove(journal_path);
  const double journal_overhead = (sweep_on - sweep_off) / sweep_off * 100.0;
  std::printf("flight recorder overhead on batched sweep (%zu points, cold cache):\n",
              points.size());
  std::printf("  journal on %.3f ms | off %.3f ms | overhead %+.2f%% (target < 2%%)\n\n",
              sweep_on * 1e3, sweep_off * 1e3, journal_overhead);

  // Machine-readable copy for tools/check_bench_regression.py: each
  // scenario's overhead_pct is gated against the baseline's
  // max_overhead_pct ceiling (bench/baselines/BENCH_obs_overhead.json).
  if (std::FILE* out = std::fopen("BENCH_obs_overhead.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"obs_overhead\",\n  \"scenarios\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"telemetry_runtime_toggle\", \"overhead_pct\": %.4f},\n",
                 overhead);
    std::fprintf(out,
                 "    {\"name\": \"kernel_compiled_out\", \"overhead_pct\": %.4f},\n",
                 (compiled_out - plain) / plain * 100.0);
    std::fprintf(out,
                 "    {\"name\": \"sweep_journal\", \"overhead_pct\": %.4f}\n",
                 journal_overhead);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_obs_overhead.json\n\n");
  }
}

}  // namespace
}  // namespace c2b

int main(int argc, char** argv) {
  c2b::report_obs_overhead();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
