// Fig. 8 reproduction: problem size W and execution time T of memory-bounded
// scaling with g(N) = N^{3/2}, f_mem = 0.3, C in {1, 4, 8}.

#include "bench_util.h"
#include "scaling_figures.h"

namespace c2b::bench {
namespace {

void bm_scaling_sweep(benchmark::State& state) {
  for (auto _ : state) {
    const ScalingCurves curves = compute_scaling_curves(0.3, {1.0, 4.0, 8.0}, 1024);
    benchmark::DoNotOptimize(curves.t[0].back());
  }
}
BENCHMARK(bm_scaling_sweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b::bench;
  const ScalingCurves curves = compute_scaling_curves(/*f_mem=*/0.3);
  emit("Fig. 8: W and T of memory-bounded scaling (g=N^1.5, f_mem=0.3)",
       scaling_time_table(curves), "fig8_scaling_fmem03");
  print_scaling_findings(curves, 0.3);
  return run_benchmarks(argc, argv);
}
