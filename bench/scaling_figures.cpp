#include "scaling_figures.h"

#include <algorithm>
#include <cstdio>

namespace c2b::bench {

void print_scaling_findings(const ScalingCurves& curves, double f_mem) {
  const std::size_t last = curves.n.size() - 1;
  const std::size_t c_last = curves.c_values.size() - 1;

  const double t_ratio = curves.t[0][last] / curves.t[c_last][last];
  std::printf("[shape] f_mem=%.1f: at N=%d, T(C=%d)/T(C=%d) = %.2fx — higher memory\n"
              "        concurrency flattens the time curve (paper: 'very significant').\n",
              f_mem, static_cast<int>(curves.n[last]),
              static_cast<int>(curves.c_values[0]),
              static_cast<int>(curves.c_values[c_last]), t_ratio);

  for (std::size_t ci = 0; ci < curves.c_values.size(); ++ci) {
    const auto best =
        std::max_element(curves.throughput[ci].begin(), curves.throughput[ci].end());
    const std::size_t best_i =
        static_cast<std::size_t>(best - curves.throughput[ci].begin());
    // The N beyond which W/T stops improving by more than 2%.
    std::size_t knee = best_i;
    for (std::size_t i = 0; i + 1 < curves.throughput[ci].size(); ++i) {
      if (curves.throughput[ci][i] >= *best * 0.98) {
        knee = i;
        break;
      }
    }
    std::printf("[shape] C=%d: peak W/T %.3f at N=%d; within 2%% of peak from N=%d.\n",
                static_cast<int>(curves.c_values[ci]), *best,
                static_cast<int>(curves.n[best_i]), static_cast<int>(curves.n[knee]));
  }
}

}  // namespace c2b::bench
