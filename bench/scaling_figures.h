#pragma once

// Shared machinery for the paper's Figs. 8-11: memory-bounded scaling of
// problem size W, execution time T, and throughput W/T versus core count N
// at g(N) = N^{3/2} and memory concurrency C in {1, 4, 8}.
//
// The concurrency knob is realized exactly as the paper treats it: with
// pure_miss_fraction = pure_penalty_fraction = 1 and C_H = C_M = C, Eq. (2)
// collapses to C-AMAT = AMAT / C, so the three curves differ only in how
// much of the (area- and capacity-dependent) AMAT concurrency hides.

#include <string>
#include <vector>

#include "c2b/common/math_util.h"
#include "c2b/common/table.h"
#include "c2b/core/c2bound.h"

namespace c2b::bench {

struct ScalingCurves {
  std::vector<double> n;                        ///< core counts
  std::vector<double> w;                        ///< problem size (normalized)
  std::vector<std::vector<double>> t;           ///< per C: time (normalized)
  std::vector<std::vector<double>> throughput;  ///< per C: W/T (normalized)
  std::vector<double> c_values;
};

inline C2BoundModel scaling_model(double f_mem, double concurrency) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = f_mem;
  app.f_seq = 0.02;
  app.overlap_ratio = 0.2;
  app.working_set_lines0 = 1 << 14;
  app.g = ScalingFunction::power(1.5);
  app.hit_concurrency = concurrency;
  app.miss_concurrency = concurrency;
  app.pure_miss_fraction = 1.0;
  app.pure_penalty_fraction = 1.0;

  MachineProfile machine;
  machine.chip.total_area = 8192.0;  // room for ~1000 cores like the figures
  machine.chip.shared_area = 204.8;
  // Shared memory-controller queueing: this is what caps W/T for C = 1
  // around a hundred cores in the paper's Fig. 10 while higher C keeps
  // scaling (the exposed penalty is divided by C_M).
  machine.memory_contention = 0.02;
  return C2BoundModel(app, machine);
}

/// Compute the Figs. 8-11 series. Area per core uses a fixed 40/20/40
/// split of the budget at each N (the figures hold the allocation policy
/// constant and vary N and C).
inline ScalingCurves compute_scaling_curves(double f_mem,
                                            std::vector<double> c_values = {1.0, 4.0, 8.0},
                                            int n_max = 1024) {
  ScalingCurves curves;
  curves.c_values = c_values;
  curves.t.resize(c_values.size());
  curves.throughput.resize(c_values.size());

  const std::vector<int> n_sweep = pow2_sweep(1, n_max);
  // Common baseline: the C = 1, N = 1 time, so the absolute benefit of
  // memory concurrency is visible in every curve (as in the paper's plots).
  double t_baseline = 0.0;
  for (const int n : n_sweep) {
    const double n_d = n;
    curves.n.push_back(n_d);
    for (std::size_t ci = 0; ci < c_values.size(); ++ci) {
      const C2BoundModel model = scaling_model(f_mem, c_values[ci]);
      const double budget = model.machine().chip.per_core_budget(n_d);
      const DesignPoint d{.n_cores = n_d,
                          .a0 = budget * 0.4,
                          .a1 = budget * 0.2,
                          .a2 = budget * 0.4};
      const Evaluation e = model.evaluate(d);
      if (n == 1 && ci == 0) t_baseline = e.execution_time;
      curves.t[ci].push_back(e.execution_time / t_baseline);
      curves.throughput[ci].push_back(e.problem_size / e.execution_time * t_baseline /
                                      1e6);
      if (ci == 0) curves.w.push_back(e.problem_size / 1e6);
    }
  }
  return curves;
}

/// Fig. 8/9 table: N, W, T per C.
inline Table scaling_time_table(const ScalingCurves& curves) {
  std::vector<std::string> headers{"N", "W (norm)"};
  for (const double c : curves.c_values)
    headers.push_back("T (C=" + std::to_string(static_cast<int>(c)) + ")");
  Table table(std::move(headers), 5);
  for (std::size_t i = 0; i < curves.n.size(); ++i) {
    std::vector<Cell> row{static_cast<std::int64_t>(curves.n[i]), curves.w[i]};
    for (std::size_t ci = 0; ci < curves.c_values.size(); ++ci)
      row.emplace_back(curves.t[ci][i]);
    table.add_row(std::move(row));
  }
  return table;
}

/// Fig. 10/11 table: N, W/T per C.
inline Table scaling_throughput_table(const ScalingCurves& curves) {
  std::vector<std::string> headers{"N"};
  for (const double c : curves.c_values)
    headers.push_back("W/T (C=" + std::to_string(static_cast<int>(c)) + ")");
  Table table(std::move(headers), 5);
  for (std::size_t i = 0; i < curves.n.size(); ++i) {
    std::vector<Cell> row{static_cast<std::int64_t>(curves.n[i])};
    for (std::size_t ci = 0; ci < curves.c_values.size(); ++ci)
      row.emplace_back(curves.throughput[ci][i]);
    table.add_row(std::move(row));
  }
  return table;
}

/// Shape checks printed under each figure (what EXPERIMENTS.md records).
void print_scaling_findings(const ScalingCurves& curves, double f_mem);

}  // namespace c2b::bench
