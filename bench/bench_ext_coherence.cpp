// Extension bench: directory-coherence costs on the cycle-level CMP.
//
// The paper's CMP (Fig. 3) has coherent private L1s over a sliced L2; this
// bench quantifies what that coherence costs as a function of sharing
// behavior — the substrate-level effect a C²-Bound user would fold into a
// multi-threaded application's measured C-AMAT.

#include <cstdio>

#include "bench_util.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b::bench {
namespace {

sim::SystemConfig coherent_system(std::uint32_t cores, bool coherence) {
  sim::SystemConfig config;
  config.hierarchy.cores = cores;
  config.hierarchy.coherence = coherence;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  config.hierarchy.noc.nodes = std::max(4u, cores);
  return config;
}

/// Lock-style dependent read-modify-write stream; `shared_fraction` of the
/// RMWs hit one contended line, the rest go to a private region.
Trace rmw_trace(double shared_fraction, std::uint64_t private_base, std::uint64_t n,
                std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  t.name = "rmw";
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool shared = rng.bernoulli(shared_fraction);
    const std::uint64_t address =
        shared ? 0 : private_base + rng.uniform_below(1024) * 64;
    t.records.push_back(
        {.kind = InstrKind::kLoad, .depends_on_prev_mem = true, .address = address});
    t.records.push_back({.kind = InstrKind::kCompute});
    t.records.push_back(
        {.kind = InstrKind::kStore, .depends_on_prev_mem = true, .address = address});
    t.records.push_back({.kind = InstrKind::kCompute});
  }
  return t;
}

void bm_coherent_pingpong(benchmark::State& state) {
  const auto config = coherent_system(2, true);
  const std::vector<Trace> traces{rmw_trace(1.0, 1 << 20, 2000, 1),
                                  rmw_trace(1.0, 2 << 20, 2000, 2)};
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_system(config, traces).cycles);
}
BENCHMARK(bm_coherent_pingpong)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  // ---- Sweep 1: sharing fraction on 4 cores ----
  {
    Table table({"shared fraction", "cycles", "slowdown vs private", "invalidations",
                 "owner transfers"},
                4);
    double base_cycles = 0.0;
    for (const double fraction : {0.0, 0.05, 0.2, 0.5, 1.0}) {
      std::vector<Trace> traces;
      for (std::uint32_t c = 0; c < 4; ++c)
        traces.push_back(rmw_trace(fraction, (c + 1ull) << 20, 3000, c + 1));
      const sim::SystemResult r = simulate_system(coherent_system(4, true), traces);
      if (fraction == 0.0) base_cycles = static_cast<double>(r.cycles);
      table.add_row({fraction, static_cast<std::int64_t>(r.cycles),
                     static_cast<double>(r.cycles) / base_cycles,
                     static_cast<std::int64_t>(r.hierarchy.coherence_invalidations),
                     static_cast<std::int64_t>(r.hierarchy.coherence_owner_transfers)});
    }
    emit("Coherence: cost vs fraction of contended RMWs (4 cores)", table,
         "ext_coherence_sharing");
  }

  // ---- Sweep 2: core count at heavy sharing, coherence on vs off ----
  {
    Table table({"cores", "cycles (coherent)", "cycles (incoherent)", "coherence tax"},
                4);
    for (const std::uint32_t cores : {2u, 4u, 8u, 16u}) {
      std::vector<Trace> traces;
      for (std::uint32_t c = 0; c < cores; ++c)
        traces.push_back(rmw_trace(0.5, (c + 1ull) << 20, 2000, c + 1));
      const sim::SystemResult on = simulate_system(coherent_system(cores, true), traces);
      const sim::SystemResult off = simulate_system(coherent_system(cores, false), traces);
      table.add_row({static_cast<std::int64_t>(cores), static_cast<std::int64_t>(on.cycles),
                     static_cast<std::int64_t>(off.cycles),
                     static_cast<double>(on.cycles) / static_cast<double>(off.cycles)});
    }
    emit("Coherence: tax vs core count (50% contended RMWs)", table,
         "ext_coherence_cores");
  }

  std::printf("[shape] the coherence tax grows with both the sharing fraction and the\n"
              "        core count — invalidation fan-out and ownership ping-pong are\n"
              "        the serialization C-AMAT sees as vanishing concurrency.\n");
  return run_benchmarks(argc, argv);
}
