// Extension bench (paper Section VII: "The extension of C²-Bound to
// asymmetric CMP DSE is straightforward"): symmetric vs asymmetric optimal
// designs across sequential fractions — the capacity/concurrency-aware
// version of Hill & Marty's classic result. Expect the asymmetric chip's
// edge to grow with f_seq, bought by a progressively bigger big core.

#include <cstdio>

#include "bench_util.h"
#include "c2b/core/asymmetric.h"

namespace c2b::bench {
namespace {

AppProfile app_with_fseq(double f_seq) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = f_seq;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::fixed();  // fixed problem isolates the Amdahl effect
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile machine_profile() {
  MachineProfile machine;
  machine.chip.total_area = 128.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;
  return machine;
}

void bm_asymmetric_optimize(benchmark::State& state) {
  OptimizerOptions options;
  options.n_max = 8;
  options.nelder_mead_restarts = 1;
  for (auto _ : state) {
    const AsymmetricOptimizer opt(
        AsymmetricC2BoundModel(app_with_fseq(0.2), machine_profile()), options);
    benchmark::DoNotOptimize(opt.optimize().best.execution_time);
  }
}
BENCHMARK(bm_asymmetric_optimize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  OptimizerOptions options;
  options.n_max = 24;
  options.nelder_mead_restarts = 2;

  Table table({"f_seq", "sym: N / time", "asym: n_small + big(r) / time",
               "asym speedup over sym"},
              4);
  for (const double f_seq : {0.02, 0.1, 0.2, 0.35, 0.5}) {
    const AppProfile app = app_with_fseq(f_seq);
    const MachineProfile machine = machine_profile();
    const OptimalDesign sym = C2BoundOptimizer(C2BoundModel(app, machine), options).optimize();
    const AsymmetricOptimum asym =
        AsymmetricOptimizer(AsymmetricC2BoundModel(app, machine), options).optimize();

    char sym_desc[64];
    std::snprintf(sym_desc, sizeof sym_desc, "N=%.0f / %.3g", sym.best.design.n_cores,
                  sym.best.execution_time);
    char asym_desc[96];
    std::snprintf(asym_desc, sizeof asym_desc, "n=%lld + big(r=%.1f) / %.3g",
                  asym.best.design.n_small, asym.best.design.big_core_ratio,
                  asym.best.execution_time);
    table.add_row({f_seq, std::string(sym_desc), std::string(asym_desc),
                   sym.best.execution_time / asym.best.execution_time});
  }
  emit("Extension: symmetric vs asymmetric C²-Bound optima (fixed problem)", table,
       "ext_asymmetric");

  std::printf("[shape] the asymmetric advantage grows with f_seq, and the optimizer\n"
              "        buys a bigger big core as the serial phase lengthens — the\n"
              "        Hill-Marty result, reproduced inside the C²-Bound framework.\n");
  return run_benchmarks(argc, argv);
}
