// Surrogate-guided sweep pruning benchmark: one Fig.-12-scale factorial
// study (make_large_axes, ~10^5 raw points) swept exhaustively and with
// context.surrogate_enabled, cold cache both ways. The surrogate run is
// identity-checked against the exhaustive optimum first (same grid index,
// bitwise-equal time — the `surrogate` oracle family proves this on seeded
// spaces, the bench re-asserts it on the measured one), then the wall-clock
// ratio and the fraction of trace classes the pruner actually simulated are
// emitted to BENCH_surrogate_dse.json for the perf-smoke CI gate: `speedup`
// is a floor and `max_classes_simulated_pct` a hard ceiling, so losing
// either the pruning (speedup collapses toward 1x) or the band logic
// (classes_simulated_pct creeps toward 100) trips CI.
//
// A second scenario A/Bs Mlp::predict against Mlp::predict_batch on a
// surrogate-sized query stream — the batch path reuses one scratch buffer
// across the whole batch and must not regress against per-call prediction.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "c2b/ann/mlp.h"
#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/common/rng.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

/// The measured study: a memory-stratified stencil on the Fig.-12-scale
/// grid with an area budget that keeps classes N=1..12 feasible — the
/// slow small-N classes are several times off the incumbent, which is
/// exactly the landscape the class pruner is built for. (A flat landscape
/// is the worst case: nothing prunes and the surrogate degrades to ~1x,
/// see DESIGN.md.)
struct SweepMeasurement {
  std::size_t grid_points = 0;
  std::size_t feasible = 0;
  std::size_t classes_total = 0;
  std::size_t classes_simulated = 0;
  double exhaustive_ms = 0.0;
  double surrogate_ms = 0.0;
  double speedup = 0.0;
  double classes_simulated_pct = 0.0;
  double points_simulated_pct = 0.0;
  double mre = 0.0;
};

int run_sweep(SweepMeasurement& m) {
  DseContext context;
  context.workload = make_stencil_workload(96);
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.instructions0 = 4'000;
  context.per_core_cap = 2'000;
  context.chip.total_area = 10.0;
  context.chip.shared_area = 2.0;
  const GridSpace space = make_design_space(make_large_axes());

  // Cold cache for both paths; the sweeps are long enough that one timed
  // run per path is stable (and the exhaustive side is too heavy to rep).
  exec::SimCache::global().set_enabled(false);

  auto start = std::chrono::steady_clock::now();
  const FullDseResult exhaustive = run_full_dse(context, space);
  m.exhaustive_ms = wall_ms(start);

  DseContext surrogate_context = context;
  surrogate_context.surrogate_enabled = true;
  start = std::chrono::steady_clock::now();
  const FullDseResult surrogate = run_full_dse(surrogate_context, space);
  m.surrogate_ms = wall_ms(start);

  if (surrogate.best_index != exhaustive.best_index ||
      !bits_equal(surrogate.best_time, exhaustive.best_time)) {
    std::fprintf(stderr,
                 "surrogate optimum diverged: %zu (%.17g) vs exhaustive %zu (%.17g)\n",
                 surrogate.best_index, surrogate.best_time, exhaustive.best_index,
                 exhaustive.best_time);
    return 1;
  }

  m.grid_points = space.size();
  m.feasible = exhaustive.feasible_count;
  m.classes_total = surrogate.surrogate.classes_total;
  m.classes_simulated = surrogate.surrogate.classes_simulated;
  m.speedup = m.surrogate_ms > 0.0 ? m.exhaustive_ms / m.surrogate_ms : 0.0;
  m.classes_simulated_pct =
      100.0 * static_cast<double>(surrogate.surrogate.classes_simulated) /
      static_cast<double>(surrogate.surrogate.classes_total);
  m.points_simulated_pct =
      100.0 * static_cast<double>(surrogate.surrogate.points_simulated) /
      static_cast<double>(surrogate.surrogate.points_total);
  m.mre = surrogate.surrogate.mre;
  return 0;
}

struct PredictMeasurement {
  std::size_t queries = 0;
  double per_call_ms = 0.0;
  double batch_ms = 0.0;
  double speedup = 0.0;
};

int run_predict_ab(PredictMeasurement& m) {
  // A surrogate-shaped net ({6,16,16,1}) on a smooth 6-dimensional target,
  // queried with a space-sized batch — the shape predict_batch exists for.
  MlpConfig config;
  config.layer_sizes = {6, 16, 16, 1};
  config.seed = 21;
  Mlp mlp(config);
  Rng rng(31);
  std::vector<Vector> train_x;
  std::vector<double> train_y;
  for (int i = 0; i < 256; ++i) {
    Vector x(6);
    double y = 1.0;
    for (std::size_t d = 0; d < 6; ++d) {
      x[d] = rng.uniform(0.25, 4.0);
      y += (d % 2 == 0 ? 1.0 : -0.5) * std::log2(x[d]);
    }
    train_x.push_back(std::move(x));
    train_y.push_back(y);
  }
  mlp.fit(train_x, train_y, 200);

  constexpr std::size_t kQueries = 100'000;
  std::vector<Vector> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    Vector x(6);
    for (std::size_t d = 0; d < 6; ++d) x[d] = rng.uniform(0.25, 4.0);
    queries.push_back(std::move(x));
  }
  m.queries = kQueries;

  constexpr int kReps = 3;
  m.per_call_ms = 1e300;
  m.batch_ms = 1e300;
  double sink = 0.0;
  std::vector<double> batch;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (const Vector& q : queries) sink += mlp.predict(q);
    m.per_call_ms = std::min(m.per_call_ms, wall_ms(start));
    start = std::chrono::steady_clock::now();
    batch = mlp.predict_batch(queries);
    m.batch_ms = std::min(m.batch_ms, wall_ms(start));
  }
  for (std::size_t i = 0; i < queries.size(); ++i)
    if (!bits_equal(batch[i], mlp.predict(queries[i]))) {
      std::fprintf(stderr, "predict_batch diverged from predict at query %zu\n", i);
      return 1;
    }
  benchmark::DoNotOptimize(sink);
  m.speedup = m.batch_ms > 0.0 ? m.per_call_ms / m.batch_ms : 0.0;
  return 0;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  SweepMeasurement sweep;
  if (run_sweep(sweep) != 0) return 1;
  PredictMeasurement predict;
  if (run_predict_ab(predict) != 0) return 1;

  Table table({"scenario", "grid", "feasible", "exhaustive (ms)", "surrogate (ms)",
               "speedup", "classes sim %", "points sim %"},
              2);
  table.add_row({std::string("surrogate_stencil"), static_cast<std::int64_t>(sweep.grid_points),
                 static_cast<std::int64_t>(sweep.feasible), sweep.exhaustive_ms,
                 sweep.surrogate_ms, sweep.speedup, sweep.classes_simulated_pct,
                 sweep.points_simulated_pct});
  emit("Surrogate-guided DSE vs exhaustive sweep (cold cache)", table, "surrogate_dse");

  Table ab({"scenario", "queries", "per-call (ms)", "batch (ms)", "speedup"}, 2);
  ab.add_row({std::string("mlp_predict_batch"), static_cast<std::int64_t>(predict.queries),
              predict.per_call_ms, predict.batch_ms, predict.speedup});
  emit("Mlp::predict vs Mlp::predict_batch", ab, "surrogate_predict_ab");

  if (std::FILE* out = std::fopen("BENCH_surrogate_dse.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"surrogate_dse\",\n  \"scenarios\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"surrogate_stencil\", \"grid_points\": %zu, "
                 "\"feasible\": %zu, \"classes_total\": %zu, \"classes_simulated\": %zu, "
                 "\"exhaustive_ms\": %.3f, \"surrogate_ms\": %.3f, \"speedup\": %.3f, "
                 "\"classes_simulated_pct\": %.3f, \"points_simulated_pct\": %.3f, "
                 "\"mre\": %.4f},\n",
                 sweep.grid_points, sweep.feasible, sweep.classes_total,
                 sweep.classes_simulated, sweep.exhaustive_ms, sweep.surrogate_ms,
                 sweep.speedup, sweep.classes_simulated_pct, sweep.points_simulated_pct,
                 sweep.mre);
    std::fprintf(out,
                 "    {\"name\": \"mlp_predict_batch\", \"queries\": %zu, "
                 "\"per_call_ms\": %.3f, \"batch_ms\": %.3f, \"speedup\": %.3f}\n",
                 predict.queries, predict.per_call_ms, predict.batch_ms, predict.speedup);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_surrogate_dse.json\n");
  }
  return run_benchmarks(argc, argv);
}
