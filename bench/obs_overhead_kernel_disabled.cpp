// The instrumented kernel rebuilt with the compile-time kill switch: the
// define must come before any include so obs.h emits the no-op macros.
#define C2B_OBS_DISABLED 1

#include "obs_overhead_kernel.h"

#include "c2b/obs/obs.h"

namespace c2b::bench {

std::uint64_t obs_kernel_compiled_out(std::size_t iterations) {
  std::uint64_t acc = 1469598103934665603ull;
  for (std::size_t i = 0; i < iterations; ++i) {
    acc ^= i;
    acc *= 1099511628211ull;
    C2B_COUNTER_INC("bench.obs.kernel_iterations");
  }
  return acc;
}

}  // namespace c2b::bench
