// Fig. 11 reproduction: throughput W/T of scaling with g(N) = N^{3/2},
// f_mem = 0.9, C in {1, 4, 8}. Compared with Fig. 10, W/T must decrease
// with the higher data-access frequency.

#include "bench_util.h"
#include "scaling_figures.h"

namespace c2b::bench {
namespace {

void bm_throughput_sweep_hungry(benchmark::State& state) {
  for (auto _ : state) {
    const ScalingCurves curves = compute_scaling_curves(0.9, {8.0}, 1024);
    benchmark::DoNotOptimize(curves.throughput[0].back());
  }
}
BENCHMARK(bm_throughput_sweep_hungry)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b::bench;
  const ScalingCurves low = compute_scaling_curves(/*f_mem=*/0.3);
  const ScalingCurves high = compute_scaling_curves(/*f_mem=*/0.9);
  emit("Fig. 11: W/T of memory-bounded scaling (g=N^1.5, f_mem=0.9)",
       scaling_throughput_table(high), "fig11_throughput_fmem09");
  print_scaling_findings(high, 0.9);

  // Paper: W/T decreases with f_mem (Fig. 10 vs Fig. 11) at matched
  // absolute scale. Normalized curves share T(1); compare absolute W/T.
  std::size_t decreased = 0;
  std::size_t total = 0;
  for (std::size_t ci = 0; ci < high.c_values.size(); ++ci) {
    const c2b::C2BoundModel m_low = scaling_model(0.3, high.c_values[ci]);
    const c2b::C2BoundModel m_high = scaling_model(0.9, high.c_values[ci]);
    for (const double n : {16.0, 128.0, 1024.0}) {
      const double budget = m_low.machine().chip.per_core_budget(n);
      const c2b::DesignPoint d{.n_cores = n, .a0 = budget * 0.4, .a1 = budget * 0.2,
                               .a2 = budget * 0.4};
      ++total;
      if (m_high.evaluate(d).throughput < m_low.evaluate(d).throughput) ++decreased;
    }
  }
  std::printf("[shape] absolute W/T lower at f_mem=0.9 than 0.3 in %zu/%zu samples "
              "(paper: 'W/T decreases with f_mem').\n",
              decreased, total);
  return run_benchmarks(argc, argv);
}
