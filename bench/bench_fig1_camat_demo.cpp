// Fig. 1 reproduction: the paper's worked five-access C-AMAT example,
// including the per-cycle activity diagram, the derived metric components,
// and agreement between the offline analyzer and the on-line HCD/MCD
// detector model.

#include <cstdio>

#include "bench_util.h"
#include "c2b/metrics/timeline.h"
#include "c2b/sim/detector/detector.h"
#include "c2b/common/rng.h"

namespace c2b::bench {
namespace {

void print_cycle_diagram(const std::vector<TimelineAccess>& accesses) {
  std::uint64_t last_cycle = 0;
  for (const TimelineAccess& a : accesses)
    last_cycle = std::max(last_cycle, a.start_cycle + a.hit_cycles + a.miss_penalty_cycles - 1);

  std::printf("\ncycle:    ");
  for (std::uint64_t c = 1; c <= last_cycle; ++c) std::printf("%2llu ", (unsigned long long)c);
  std::printf("\n");
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const TimelineAccess& a = accesses[i];
    std::printf("access %zu: ", i + 1);
    for (std::uint64_t c = 1; c <= last_cycle; ++c) {
      const char* mark = "  ";
      if (c >= a.start_cycle && c < a.start_cycle + a.hit_cycles) mark = " H";
      const std::uint64_t miss_start = a.start_cycle + a.hit_cycles;
      if (a.miss_penalty_cycles > 0 && c >= miss_start &&
          c < miss_start + a.miss_penalty_cycles)
        mark = " M";
      std::printf("%s ", mark);
    }
    std::printf("\n");
  }
}

void bm_analyze_timeline(benchmark::State& state) {
  Rng rng(1);
  std::vector<TimelineAccess> accesses;
  std::uint64_t t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.uniform_below(4);
    accesses.push_back({t, 1 + static_cast<std::uint32_t>(rng.uniform_below(4)),
                        rng.bernoulli(0.3)
                            ? 1 + static_cast<std::uint32_t>(rng.uniform_below(20))
                            : 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_timeline(accesses).camat_value);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_analyze_timeline)->Unit(benchmark::kMicrosecond);

void bm_detector_record(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    sim::CamatDetector detector;
    std::uint64_t t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += rng.uniform_below(4);
      detector.record_access(t, 3,
                             rng.bernoulli(0.3)
                                 ? 1 + static_cast<std::uint32_t>(rng.uniform_below(20))
                                 : 0);
      if ((i & 63) == 0) detector.advance(t);
    }
    benchmark::DoNotOptimize(detector.finalize().camat_value);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_detector_record)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const auto accesses = figure1_example_timeline();
  print_cycle_diagram(accesses);
  const TimelineMetrics offline = analyze_timeline(accesses);

  sim::CamatDetector detector;
  for (const TimelineAccess& a : accesses)
    detector.record_access(a.start_cycle, a.hit_cycles, a.miss_penalty_cycles);
  const TimelineMetrics online = detector.finalize();

  Table table({"metric", "paper", "offline analyzer", "on-line detector"}, 6);
  auto row = [&](const char* name, double paper, double off, double on) {
    table.add_row({std::string(name), paper, off, on});
  };
  row("AMAT (cycles)", 3.8, offline.amat_value, online.amat_value);
  row("C-AMAT (cycles)", 1.6, offline.camat_value, online.camat_value);
  row("H", 3.0, offline.amat_params.hit_time, online.amat_params.hit_time);
  row("MR", 0.4, offline.amat_params.miss_rate, online.amat_params.miss_rate);
  row("AMP", 2.0, offline.amat_params.miss_penalty, online.amat_params.miss_penalty);
  row("C_H", 2.5, offline.camat_params.hit_concurrency, online.camat_params.hit_concurrency);
  row("pMR", 0.2, offline.camat_params.pure_miss_rate, online.camat_params.pure_miss_rate);
  row("pAMP", 2.0, offline.camat_params.pure_miss_penalty,
      online.camat_params.pure_miss_penalty);
  row("C_M", 1.0, offline.camat_params.miss_concurrency,
      online.camat_params.miss_concurrency);
  row("C = AMAT/C-AMAT", 3.8 / 1.6, offline.concurrency_c, online.concurrency_c);
  row("APC", 0.625, offline.apc, online.apc);
  emit("Fig. 1: worked C-AMAT example (5 accesses, H=3)", table, "fig1_camat_demo");

  std::printf("[shape] concurrency doubled memory performance in the example: "
              "AMAT/C-AMAT = %.3f (paper: 3.8/1.6 = 2.375).\n",
              offline.amat_value / offline.camat_value);
  return run_benchmarks(argc, argv);
}
