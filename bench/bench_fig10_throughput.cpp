// Fig. 10 reproduction: throughput W/T of scaling with g(N) = N^{3/2},
// f_mem = 0.3, C in {1, 4, 8}. Expected shapes: higher C raises W/T; at
// C = 1 roughly a hundred cores already reach the achievable throughput.

#include "bench_util.h"
#include "scaling_figures.h"

namespace c2b::bench {
namespace {

void bm_throughput_sweep(benchmark::State& state) {
  for (auto _ : state) {
    const ScalingCurves curves = compute_scaling_curves(0.3, {8.0}, 1024);
    benchmark::DoNotOptimize(curves.throughput[0].back());
  }
}
BENCHMARK(bm_throughput_sweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b::bench;
  const ScalingCurves curves = compute_scaling_curves(/*f_mem=*/0.3);
  emit("Fig. 10: W/T of memory-bounded scaling (g=N^1.5, f_mem=0.3)",
       scaling_throughput_table(curves), "fig10_throughput_fmem03");
  print_scaling_findings(curves, 0.3);

  // Paper: higher concurrency -> uniformly higher W/T.
  bool dominated = true;
  for (std::size_t i = 0; i < curves.n.size(); ++i) {
    if (curves.throughput[2][i] + 1e-12 < curves.throughput[0][i]) dominated = false;
  }
  std::printf("[shape] W/T(C=8) >= W/T(C=1) across the whole N sweep: %s\n",
              dominated ? "yes" : "NO");
  return run_benchmarks(argc, argv);
}
