#pragma once

// A tiny FNV-style arithmetic kernel used to price the telemetry macros.
// Three variants of the identical loop:
//   * plain         — no instrumentation at all (the baseline);
//   * instrumented  — one C2B_COUNTER_INC per iteration, compiled normally
//                     (obs_overhead_kernel.cpp);
//   * compiled_out  — the same instrumented source built with
//                     C2B_OBS_DISABLED (obs_overhead_kernel_disabled.cpp),
//                     so the macro must cost exactly nothing.

#include <cstddef>
#include <cstdint>

namespace c2b::bench {

std::uint64_t obs_kernel_plain(std::size_t iterations);
std::uint64_t obs_kernel_instrumented(std::size_t iterations);
std::uint64_t obs_kernel_compiled_out(std::size_t iterations);

}  // namespace c2b::bench
