#pragma once

// Shared helpers for the reproduction bench binaries. Every binary prints
// its paper table/figure as an aligned console table, mirrors it to
// bench_out/<name>.csv, and then (when built with google-benchmark hooks)
// runs the micro-benchmarks registered for that figure.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "c2b/common/table.h"

namespace c2b::bench {

/// Print a reproduction table with a titled banner and mirror it to CSV.
inline void emit(const std::string& title, const Table& table, const std::string& csv_name) {
  std::printf("\n=== %s ===\n%s", title.c_str(), table.to_string().c_str());
  const std::string path = "bench_out/" + csv_name + ".csv";
  if (table.write_csv(path)) std::printf("[csv] %s\n", path.c_str());
}

/// Standard main body: print the figure first, then run any registered
/// google-benchmark micro-benchmarks (skipped cleanly when none).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace c2b::bench
