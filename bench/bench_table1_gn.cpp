// Table I reproduction: the g(N) scale factors of TMM, band-sparse SpMV,
// stencil, and FFT, derived from their computation/memory complexities —
// plus an empirical cross-check that the trace generators' footprints
// actually grow the way the table's memory column says.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "c2b/laws/scaling.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

void bm_generator_throughput(benchmark::State& state) {
  const c2b::WorkloadSpec spec = c2b::make_tmm_workload();
  auto generator = spec.make_generator(1.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->next().address);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_generator_throughput);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  Table table({"Application", "Computation", "Memory", "g(N)", "g(4)", "g(16)", "g(64)"}, 5);
  for (const Table1Entry& row : table1_entries()) {
    table.add_row({row.application, row.computation, row.memory, row.g_formula, row.g(4.0),
                   row.g(16.0), row.g(64.0)});
  }
  emit("Table I: g(N) factors of some applications", table, "table1_gn");

  // Empirical footprint growth: scaling each generator's footprint knob by
  // s must multiply the distinct-lines count by ~s (the generators' `scale`
  // parameter is the table's memory axis).
  Table check({"workload", "lines @1x", "lines @4x", "ratio", "expected"}, 4);
  for (const WorkloadSpec& spec :
       {make_tmm_workload(96), make_stencil_workload(128), make_fft_workload(12),
        make_band_sparse_workload(1 << 12, 8)}) {
    const auto base = spec.make_generator(1.0, 1)->generate(600000).distinct_lines();
    const auto big = spec.make_generator(4.0, 1)->generate(2400000).distinct_lines();
    check.add_row({spec.name, static_cast<std::int64_t>(base), static_cast<std::int64_t>(big),
                   static_cast<double>(big) / static_cast<double>(base), 4.0});
  }
  emit("Table I cross-check: generator footprint growth", check, "table1_footprints");

  std::printf("[shape] all four Table I laws are at-least-linear, so all fall into the\n"
              "        paper's case I (maximize W/T) of the APS algorithm.\n");
  return run_benchmarks(argc, argv);
}
