// Ablation: which hardware structures buy which kind of memory concurrency?
//
// Section II of the paper asserts: "C_H can be contributed by caches with
// multi-port, multi-bank or pipelined structures; C_M can be contributed by
// non-blocking cache structures; out-of-order execution ... can increase
// both." This bench makes those claims quantitative on the cycle-level
// simulator: sweep one structure at a time and report the measured C-AMAT
// decomposition from the HCD/MCD detector.

#include <cstdio>

#include "bench_util.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b::bench {
namespace {

sim::SystemConfig base_config() {
  sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

Trace mlp_heavy_trace() {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 14;
  p.zipf_exponent = 0.4;
  p.f_mem = 0.6;
  p.seed = 17;
  return ZipfStreamGenerator(p).generate(120'000);
}

struct Row {
  std::string setting;
  TimelineMetrics m;
  double cpi;
};

Row run(const sim::SystemConfig& config, const Trace& trace, std::string setting) {
  const sim::SystemResult r = sim::simulate_single_core(config, trace);
  return {std::move(setting), r.cores[0].camat, r.cores[0].cpi};
}

Table to_table(const std::vector<Row>& rows) {
  Table table({"setting", "C_H", "C_M", "pMR", "C-AMAT", "C", "CPI"}, 4);
  for (const Row& r : rows) {
    table.add_row({r.setting, r.m.camat_params.hit_concurrency,
                   r.m.camat_params.miss_concurrency, r.m.camat_params.pure_miss_rate,
                   r.m.camat_value, r.m.concurrency_c, r.cpi});
  }
  return table;
}

void bm_ablation_point(benchmark::State& state) {
  const Trace trace = mlp_heavy_trace();
  const auto config = base_config();
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_single_core(config, trace).cycles);
}
BENCHMARK(bm_ablation_point)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const Trace trace = mlp_heavy_trace();

  // ---- Sweep 1: L1 banks x ports (hit concurrency C_H) ----
  {
    std::vector<Row> rows;
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u}) {
      sim::SystemConfig config = base_config();
      config.hierarchy.l1_banks = banks;
      config.hierarchy.l1_ports_per_bank = 1;
      rows.push_back(run(config, trace, std::to_string(banks) + " banks x 1 port"));
    }
    sim::SystemConfig wide = base_config();
    wide.hierarchy.l1_banks = 4;
    wide.hierarchy.l1_ports_per_bank = 4;
    rows.push_back(run(wide, trace, "4 banks x 4 ports"));
    emit("Ablation: cache banking/porting drives hit concurrency C_H", to_table(rows),
         "ablation_banks_ch");
  }

  // ---- Sweep 2: MSHR entries (miss concurrency C_M) ----
  {
    std::vector<Row> rows;
    for (const std::uint32_t mshrs : {1u, 2u, 4u, 8u, 16u, 32u}) {
      sim::SystemConfig config = base_config();
      config.hierarchy.l1_mshr_entries = mshrs;
      rows.push_back(run(config, trace, std::to_string(mshrs) + " MSHRs"));
    }
    emit("Ablation: non-blocking (MSHR) depth drives miss concurrency C_M",
         to_table(rows), "ablation_mshr_cm");
  }

  // ---- Sweep 3: ROB size (out-of-order window feeds both) ----
  {
    std::vector<Row> rows;
    for (const std::uint32_t rob : {8u, 32u, 128u, 512u}) {
      sim::SystemConfig config = base_config();
      config.core.rob_size = rob;
      rows.push_back(run(config, trace, "ROB " + std::to_string(rob)));
    }
    emit("Ablation: out-of-order window (ROB) raises overall concurrency C",
         to_table(rows), "ablation_rob_c");
  }

  // ---- Sweep 4: the workload side — dependent vs independent accesses ----
  {
    std::vector<Row> rows;
    rows.push_back(run(base_config(), trace, "independent stream"));
    const Trace chase = PointerChaseGenerator(1 << 14, 1, 3).generate(120'000);
    rows.push_back(run(base_config(), chase, "dependent chase"));
    emit("Ablation: with dependent accesses no structure can create concurrency",
         to_table(rows), "ablation_dependency");
  }

  std::printf("[shape] C_H rises with banks/ports, C_M with MSHR depth, both with ROB;\n"
              "        a dependent chase pins C to ~1 regardless of hardware — the\n"
              "        program/hardware split of concurrency the paper builds on.\n");
  return run_benchmarks(argc, argv);
}
