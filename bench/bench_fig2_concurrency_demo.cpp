// Fig. 2 reproduction: the combined effect of process-level concurrency
// (p = 1 vs p = N) and memory-level concurrency (C = 1 vs C > 1) on
// program running time, for a fixed problem size. The four quadrants of
// the paper's schematic become four model evaluations.

#include <cstdio>

#include "bench_util.h"
#include "c2b/core/c2bound.h"

namespace c2b::bench {
namespace {

double running_time(double n, double concurrency) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.4;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.2;
  app.working_set_lines0 = 1 << 16;
  app.g = ScalingFunction::fixed();  // Fig. 2 fixes the problem size
  app.hit_concurrency = concurrency;
  app.miss_concurrency = concurrency;
  app.pure_miss_fraction = 1.0;
  app.pure_penalty_fraction = 1.0;

  MachineProfile machine;
  machine.chip.total_area = 256.0;
  machine.chip.shared_area = 16.0;
  const C2BoundModel model(app, machine);
  const double budget = machine.chip.per_core_budget(n);
  const DesignPoint d{.n_cores = n, .a0 = budget * 0.4, .a1 = budget * 0.2,
                      .a2 = budget * 0.4};
  // Fixed problem divided over n cores (Amdahl-style time factor inside
  // evaluate(); g = 1 makes it f_seq + (1-f_seq)/n).
  return model.evaluate(d).execution_time;
}

void bm_quadrants(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(running_time(16.0, 4.0));
}
BENCHMARK(bm_quadrants);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const double n = 16.0;
  const double t_11 = running_time(1.0, 1.0);   // (a) p=1, C=1
  const double t_n1 = running_time(n, 1.0);     // (b) p=N, C=1
  const double t_nc = running_time(n, 4.0);     // (c) p=N, C=4
  const double t_1c = running_time(1.0, 4.0);   //     p=1, C=4 (for completeness)

  Table table({"case", "processes p", "memory concurrency C", "time (norm)"}, 4);
  table.add_row({std::string("(a) serial, no MLP"), std::int64_t{1}, std::int64_t{1}, 1.0});
  table.add_row({std::string("    serial, MLP"), std::int64_t{1}, std::int64_t{4},
                 t_1c / t_11});
  table.add_row({std::string("(b) parallel, no MLP"), std::int64_t{16}, std::int64_t{1},
                 t_n1 / t_11});
  table.add_row({std::string("(c) parallel, MLP"), std::int64_t{16}, std::int64_t{4},
                 t_nc / t_11});
  emit("Fig. 2: process-level vs memory-level concurrency (fixed problem size)", table,
       "fig2_concurrency_demo");

  std::printf("[shape] both levels of concurrency shorten the run; combining them is\n"
              "        fastest: t(a)=1.00 > t(b)=%.2f > t(c)=%.2f.\n", t_n1 / t_11,
              t_nc / t_11);
  return run_benchmarks(argc, argv);
}
