// Fig. 9 reproduction: problem size W and execution time T of memory-bounded
// scaling with g(N) = N^{3/2}, f_mem = 0.9, C in {1, 4, 8}. Compared with
// Fig. 8, execution time must increase with the higher data-access
// frequency.

#include "bench_util.h"
#include "scaling_figures.h"

namespace c2b::bench {
namespace {

void bm_model_evaluate(benchmark::State& state) {
  const C2BoundModel model = scaling_model(0.9, 4.0);
  const double budget = model.machine().chip.per_core_budget(64.0);
  const c2b::DesignPoint d{.n_cores = 64, .a0 = budget * 0.4, .a1 = budget * 0.2,
                           .a2 = budget * 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(d).execution_time);
  }
}
BENCHMARK(bm_model_evaluate);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b::bench;
  const ScalingCurves low = compute_scaling_curves(/*f_mem=*/0.3);
  const ScalingCurves high = compute_scaling_curves(/*f_mem=*/0.9);
  emit("Fig. 9: W and T of memory-bounded scaling (g=N^1.5, f_mem=0.9)",
       scaling_time_table(high), "fig9_scaling_fmem09");
  print_scaling_findings(high, 0.9);

  // Cross-figure check the paper calls out: T grows with f_mem.
  std::size_t grew = 0;
  for (std::size_t ci = 0; ci < high.c_values.size(); ++ci) {
    const c2b::C2BoundModel m_low = scaling_model(0.3, high.c_values[ci]);
    const c2b::C2BoundModel m_high = scaling_model(0.9, high.c_values[ci]);
    const double budget = m_low.machine().chip.per_core_budget(64.0);
    const c2b::DesignPoint d{.n_cores = 64, .a0 = budget * 0.4, .a1 = budget * 0.2,
                             .a2 = budget * 0.4};
    if (m_high.evaluate(d).execution_time > m_low.evaluate(d).execution_time) ++grew;
  }
  std::printf("[shape] absolute T grows with f_mem for %zu/%zu concurrency levels "
              "(paper: 'T increases with f_mem').\n",
              grew, high.c_values.size());
  return run_benchmarks(argc, argv);
}
