// Persistent SimCache benchmark: the cross-run warm-start headline. One
// Fig.-12-scale factorial study (make_large_axes) runs cold with a disk
// tier attached, then again after an emulated process restart (memory
// tier dropped, same cache directory re-attached). The warm-restart sweep
// must reproduce the cold optimum bitwise while simulating nothing — every
// point is served from the disk tier (100% disk-hit rate is asserted, not
// just measured) — and the wall-clock ratio is emitted to
// BENCH_persistent_cache.json for the perf-smoke CI gate: `speedup` is a
// floor, `max_disk_misses` and `max_simulations` are hard zeros, so losing
// the disk tier (speedup collapses to 1x) or its key stability (misses
// creep in) trips CI. A third, in-memory warm sweep (no restart) is
// measured for the report's memory-vs-disk attribution story.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "bench_util.h"
#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

namespace fs = std::filesystem;

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

struct Measurement {
  std::size_t grid_points = 0;
  std::size_t feasible = 0;
  std::size_t simulations_cold = 0;
  std::size_t simulations_warm = 0;
  std::uint64_t disk_entries = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t warm_misses = 0;
  double cold_ms = 0.0;
  double warm_restart_ms = 0.0;
  double warm_memory_ms = 0.0;
  double speedup = 0.0;
  double memory_speedup = 0.0;
  double disk_hit_rate_pct = 0.0;
};

int run_study(const std::string& cache_dir, Measurement& m) {
  // Same scaled Fig.-12 study as bench_surrogate_dse, so the two headline
  // numbers are comparable on the same landscape.
  DseContext context;
  context.workload = make_stencil_workload(96);
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.instructions0 = 4'000;
  context.per_core_cap = 2'000;
  context.chip.total_area = 10.0;
  context.chip.shared_area = 2.0;
  const GridSpace space = make_design_space(make_large_axes());
  m.grid_points = space.size();

  exec::SimCache& cache = exec::SimCache::global();
  cache.set_enabled(true);
  cache.detach_disk_tier();
  cache.clear();
  fs::remove_all(cache_dir);
  if (!cache.attach_disk_tier(cache_dir)) {
    std::fprintf(stderr, "cannot attach cache dir '%s'\n", cache_dir.c_str());
    return 1;
  }

  auto start = std::chrono::steady_clock::now();
  const FullDseResult cold = run_full_dse(context, space);
  m.cold_ms = wall_ms(start);
  m.feasible = cold.feasible_count;
  m.simulations_cold = cold.batch.members;  // design points actually simulated
  cache.flush_disk();

  // Emulated process restart: memory tier and counters gone, the same
  // directory re-attached — exactly what a new `c2b dse` invocation with
  // C2B_SIM_CACHE_DIR sees.
  cache.detach_disk_tier();
  cache.clear();
  if (!cache.attach_disk_tier(cache_dir)) {
    std::fprintf(stderr, "cannot re-attach cache dir '%s'\n", cache_dir.c_str());
    return 1;
  }
  m.disk_entries = cache.stats().disk_entries;

  start = std::chrono::steady_clock::now();
  const FullDseResult warm = run_full_dse(context, space);
  m.warm_restart_ms = wall_ms(start);
  m.simulations_warm = warm.batch.members;

  const exec::SimCacheStats stats = cache.stats();
  m.disk_hits = stats.disk_hits;
  m.warm_misses = stats.misses;
  const std::uint64_t probes = stats.hits + stats.disk_hits + stats.misses;
  m.disk_hit_rate_pct =
      probes > 0 ? 100.0 * static_cast<double>(stats.disk_hits) / static_cast<double>(probes)
                 : 0.0;

  // Identity first: a fast wrong answer is not a speedup.
  if (warm.best_index != cold.best_index || !bits_equal(warm.best_time, cold.best_time)) {
    std::fprintf(stderr, "warm-restart optimum diverged: %zu (%.17g) vs cold %zu (%.17g)\n",
                 warm.best_index, warm.best_time, cold.best_index, cold.best_time);
    return 1;
  }
  if (m.simulations_warm != 0 || m.warm_misses != 0) {
    std::fprintf(stderr,
                 "warm restart was not fully disk-served: %zu simulations, "
                 "%llu misses (disk entries %llu)\n",
                 m.simulations_warm, static_cast<unsigned long long>(m.warm_misses),
                 static_cast<unsigned long long>(m.disk_entries));
    return 1;
  }

  // Third sweep, same process: the memory tier now holds every promoted
  // point, so this is the in-memory peel path the report attributes
  // separately from the disk tier.
  start = std::chrono::steady_clock::now();
  const FullDseResult mem = run_full_dse(context, space);
  m.warm_memory_ms = wall_ms(start);
  if (mem.best_index != cold.best_index || !bits_equal(mem.best_time, cold.best_time)) {
    std::fprintf(stderr, "in-memory warm optimum diverged\n");
    return 1;
  }

  m.speedup = m.warm_restart_ms > 0.0 ? m.cold_ms / m.warm_restart_ms : 0.0;
  m.memory_speedup = m.warm_memory_ms > 0.0 ? m.cold_ms / m.warm_memory_ms : 0.0;

  cache.detach_disk_tier();
  cache.clear();
  fs::remove_all(cache_dir);
  return 0;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("c2b-bench-persistent-cache-" + std::to_string(getpid())))
          .string();
  Measurement m;
  if (run_study(cache_dir, m) != 0) {
    std::filesystem::remove_all(cache_dir);
    return 1;
  }

  Table table({"scenario", "grid", "feasible", "cold (ms)", "warm restart (ms)",
               "warm memory (ms)", "speedup", "disk hit %"},
              2);
  table.add_row({std::string("warm_restart_dse"), static_cast<std::int64_t>(m.grid_points),
                 static_cast<std::int64_t>(m.feasible), m.cold_ms, m.warm_restart_ms,
                 m.warm_memory_ms, m.speedup, m.disk_hit_rate_pct});
  emit("Persistent SimCache: cold vs warm-restart DSE (same directory)", table,
       "persistent_cache");

  if (std::FILE* out = std::fopen("BENCH_persistent_cache.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"persistent_cache\",\n  \"scenarios\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"warm_restart_dse\", \"grid_points\": %zu, "
                 "\"feasible\": %zu, \"simulations_cold\": %zu, \"simulations\": %zu, "
                 "\"disk_entries\": %llu, \"disk_hits\": %llu, \"disk_misses\": %llu, "
                 "\"cold_ms\": %.3f, \"warm_restart_ms\": %.3f, \"warm_memory_ms\": %.3f, "
                 "\"speedup\": %.3f, \"memory_speedup\": %.3f, "
                 "\"disk_hit_rate_pct\": %.3f}\n",
                 m.grid_points, m.feasible, m.simulations_cold, m.simulations_warm,
                 static_cast<unsigned long long>(m.disk_entries),
                 static_cast<unsigned long long>(m.disk_hits),
                 static_cast<unsigned long long>(m.warm_misses), m.cold_ms,
                 m.warm_restart_ms, m.warm_memory_ms, m.speedup, m.memory_speedup,
                 m.disk_hit_rate_pct);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_persistent_cache.json\n");
  }
  return run_benchmarks(argc, argv);
}
