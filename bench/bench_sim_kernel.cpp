// Event-driven kernel throughput benchmark: the cycle-skipping simulator
// kernel vs the retained per-cycle reference on two regimes —
//
//   * stall-heavy: 8 cores of a low-locality Zipf stream (f_mem = 0.3)
//     over a working set far beyond L2, against a deep, slow DRAM queue
//     with tiny MSHRs. The reference kernel walks every stall cycle; the
//     event kernel jumps between completions, so this is where the
//     speedup (and the skipped-cycle fraction) is largest.
//   * compute-bound: mostly-compute stream over a cache-resident working
//     set, where the win comes from the compute fast path batching whole
//     issue groups instead of cycle skipping.
//
// Both runs are checked for result identity (the full bitwise proof lives
// in `c2b check --family kernel`; this guards the benchmark itself from
// comparing different work). Emits BENCH_sim_kernel.json for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b::bench {
namespace {

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

struct Scenario {
  std::string name;
  sim::SystemConfig config;
  std::vector<Trace> traces;
};

Scenario stall_heavy() {
  Scenario s;
  s.name = "stall_heavy";
  s.config.core.issue_width = 4;
  s.config.core.rob_size = 64;
  s.config.core.functional_units = 4;
  s.config.hierarchy.cores = 8;
  s.config.hierarchy.l1_geometry = {.size_bytes = 8 * 1024, .line_bytes = 64,
                                    .associativity = 4};
  s.config.hierarchy.l2_geometry = {.size_bytes = 128 * 1024, .line_bytes = 64,
                                    .associativity = 8};
  s.config.hierarchy.l1_mshr_entries = 4;
  s.config.hierarchy.l2_mshr_entries = 8;
  // Deep DRAM queue: few banks, slow timing, so misses pile up behind the
  // row machinery and cores spend most cycles waiting.
  s.config.hierarchy.dram.banks = 2;
  s.config.hierarchy.dram.t_cas = 60;
  s.config.hierarchy.dram.t_rcd = 60;
  s.config.hierarchy.dram.t_rp = 60;
  s.config.hierarchy.dram.t_bus = 8;
  for (std::uint32_t c = 0; c < s.config.hierarchy.cores; ++c) {
    ZipfStreamGenerator::Params params;
    params.working_set_lines = 1 << 18;  // 16 MiB of lines, far beyond L2
    params.zipf_exponent = 0.2;          // near-uniform: almost no reuse
    params.f_mem = 0.3;
    params.seed = 1 + c;
    ZipfStreamGenerator generator(params);
    s.traces.push_back(generator.generate(60'000));
  }
  return s;
}

Scenario compute_bound() {
  Scenario s;
  s.name = "compute_bound";
  s.config.core.issue_width = 4;
  s.config.core.rob_size = 128;
  s.config.core.functional_units = 4;
  s.config.hierarchy.cores = 4;
  for (std::uint32_t c = 0; c < s.config.hierarchy.cores; ++c) {
    ZipfStreamGenerator::Params params;
    params.working_set_lines = 256;  // L1-resident
    params.zipf_exponent = 1.2;
    params.f_mem = 0.002;  // ~500-instruction compute runs between accesses
    params.seed = 101 + c;
    ZipfStreamGenerator generator(params);
    s.traces.push_back(generator.generate(400'000));
  }
  return s;
}

struct Measurement {
  std::string name;
  std::uint64_t accesses = 0;
  std::uint64_t instructions = 0;
  double event_ms = 0.0;
  double reference_ms = 0.0;
  double speedup = 0.0;
  double accesses_per_sec = 0.0;
  std::uint64_t visited_cycles = 0;
  std::uint64_t skipped_cycles = 0;
};

/// Fast identity screen (cycles + per-core counters + C-AMAT bits); the
/// exhaustive field-by-field proof is the kernel oracle's job.
bool results_match(const sim::SystemResult& a, const sim::SystemResult& b) {
  if (a.cycles != b.cycles || a.cores.size() != b.cores.size()) return false;
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    if (a.cores[c].instructions != b.cores[c].instructions ||
        a.cores[c].memory_accesses != b.cores[c].memory_accesses ||
        a.cores[c].cycles != b.cores[c].cycles ||
        !bits_equal(a.cores[c].camat.camat_value, b.cores[c].camat.camat_value))
      return false;
  }
  return true;
}

constexpr int kReps = 5;

int run_scenario(const Scenario& scenario, Measurement& m) {
  m.name = scenario.name;

  // Untimed warmup + identity check.
  const sim::SystemResult event_result = sim::simulate_system(scenario.config, scenario.traces);
  const sim::SystemResult reference_result =
      sim::simulate_system_reference(scenario.config, scenario.traces);
  if (!results_match(event_result, reference_result)) {
    std::fprintf(stderr, "%s: event kernel diverged from the reference kernel\n",
                 scenario.name.c_str());
    return 1;
  }
  for (const sim::CoreResult& core : event_result.cores) {
    m.accesses += core.memory_accesses;
    m.instructions += core.instructions;
  }

  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t visited0 = registry.counter("sim.kernel.visited_cycles").value();
  const std::uint64_t skipped0 = registry.counter("sim.kernel.skipped_cycles").value();

  m.event_ms = 1e300;
  m.reference_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    (void)sim::simulate_system(scenario.config, scenario.traces);
    m.event_ms = std::min(m.event_ms, wall_ms(start));
    start = std::chrono::steady_clock::now();
    (void)sim::simulate_system_reference(scenario.config, scenario.traces);
    m.reference_ms = std::min(m.reference_ms, wall_ms(start));
  }
  // Per-run skip accounting (the counters accumulate across the reps).
  m.visited_cycles =
      (registry.counter("sim.kernel.visited_cycles").value() - visited0) / kReps;
  m.skipped_cycles =
      (registry.counter("sim.kernel.skipped_cycles").value() - skipped0) / kReps;
  m.speedup = m.event_ms > 0.0 ? m.reference_ms / m.event_ms : 0.0;
  m.accesses_per_sec =
      m.event_ms > 0.0 ? static_cast<double>(m.accesses) / (m.event_ms / 1e3) : 0.0;
  return 0;
}

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  std::vector<Measurement> measurements(2);
  if (run_scenario(stall_heavy(), measurements[0]) != 0) return 1;
  if (run_scenario(compute_bound(), measurements[1]) != 0) return 1;

  Table table({"scenario", "accesses/s (event)", "event (ms)", "reference (ms)", "speedup",
               "skipped cycles", "visited cycles"},
              2);
  for (const Measurement& m : measurements)
    table.add_row({m.name, m.accesses_per_sec, m.event_ms, m.reference_ms, m.speedup,
                   static_cast<std::int64_t>(m.skipped_cycles),
                   static_cast<std::int64_t>(m.visited_cycles)});
  emit("Event-driven kernel vs per-cycle reference", table, "sim_kernel");

  if (std::FILE* out = std::fopen("BENCH_sim_kernel.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"sim_kernel\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const Measurement& m = measurements[i];
      const double total =
          static_cast<double>(m.visited_cycles) + static_cast<double>(m.skipped_cycles);
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"accesses\": %llu, \"instructions\": %llu, "
                   "\"event_ms\": %.3f, \"reference_ms\": %.3f, \"speedup\": %.3f, "
                   "\"accesses_per_sec\": %.1f, \"visited_cycles\": %llu, "
                   "\"skipped_cycles\": %llu, \"skip_fraction\": %.4f}%s\n",
                   m.name.c_str(), static_cast<unsigned long long>(m.accesses),
                   static_cast<unsigned long long>(m.instructions), m.event_ms,
                   m.reference_ms, m.speedup, m.accesses_per_sec,
                   static_cast<unsigned long long>(m.visited_cycles),
                   static_cast<unsigned long long>(m.skipped_cycles),
                   total > 0.0 ? static_cast<double>(m.skipped_cycles) / total : 0.0,
                   i + 1 < measurements.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[json] BENCH_sim_kernel.json\n");
  }
  return run_benchmarks(argc, argv);
}
