// Section IV reproduction (validation): how well does the calibrated
// analytic C²-Bound model predict the cycle-level simulator across the
// workload catalog and across design changes?
//
// For each workload: characterize on the baseline machine, build the same
// calibrated analytic model APS uses, then compare predicted vs simulated
// CPI at the baseline and at perturbed cache configurations. The paper's
// headline accuracy on its own space is 5.96%; what must hold here is that
// errors stay in the same few-tens-of-percent band and that the model ranks
// configurations correctly (DSE needs ordering, not absolutes).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "c2b/aps/aps.h"

namespace c2b::bench {
namespace {

sim::SystemConfig baseline() {
  sim::SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

void bm_characterize(benchmark::State& state) {
  const WorkloadSpec spec = make_stencil_workload(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        characterize(spec, baseline(), {.instructions = 60'000}).measured_cpi);
  }
}
BENCHMARK(bm_characterize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  // Reuse the APS machinery: a 1-core design space whose points are cache
  // variations around the baseline; run_aps builds the calibrated model.
  Table table({"workload", "CPI sim", "CPI via Eq.7", "APS regret %", "pick"}, 4);

  std::vector<double> errors;
  for (const WorkloadSpec& spec : workload_catalog()) {
    DseContext context;
    context.base = baseline();
    context.workload = spec;
    context.instructions0 = 30'000;
    context.per_core_cap = 30'000;
    context.chip.total_area = 64.0;
    context.chip.shared_area = 2.0;

    DseAxes axes;
    axes.a0 = {4.0};
    axes.a1 = {0.25, 0.5, 1.0, 2.0};       // 4..32 KiB L1
    axes.a2 = {0.67, 1.33, 2.67, 5.33};    // 32..256 KiB L2
    axes.n = {1};
    axes.issue = {4};
    axes.rob = {128};
    const GridSpace space = make_design_space(axes);

    const FullDseResult truth = run_full_dse(context, space);
    ApsOptions options;
    options.characterize.instructions = 60'000;
    const ApsResult aps = run_aps(context, space, options);

    // Two validations per workload:
    //  (1) the Eq. (7) decomposition: CPI == CPI_exe + f_mem * C-AMAT *
    //      (1 - overlapRatio) with every term measured independently by the
    //      detector (the correctness claim of reference [20]);
    //  (2) predictive power: the regret of the APS pick over the cache
    //      design space — the model must *rank* configurations usefully.
    const Characterization& c = aps.characterization;
    const double cpi_eq7 =
        c.cpi_exe + c.app.f_mem * c.camat.camat_value * (1.0 - c.app.overlap_ratio);
    const double regret = design_regret(truth, aps.best_index);
    errors.push_back(std::fabs(regret));

    table.add_row({spec.name, c.measured_cpi, cpi_eq7, 100.0 * std::fabs(regret),
                   std::string(regret < 1e-3 ? "exact pick" : "near miss")});
  }
  emit("Validation: calibrated model vs cycle-level simulator (per workload)", table,
       "validation_model_vs_sim");

  double mean_err = 0.0;
  for (const double e : errors) mean_err += e;
  mean_err /= static_cast<double>(errors.size());
  std::printf("[shape] mean APS-pick regret across the catalog: %.1f%% (paper reports a\n"
              "        5.96%% error for its fluidanimate case study on its own space).\n",
              100.0 * mean_err);
  return run_benchmarks(argc, argv);
}
