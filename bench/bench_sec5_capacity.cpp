// Section V reproduction: the LLC-bounded problem size (max Z s.t.
// Y(Z) <= X) and the processor-bound / memory-bound classification, for the
// Table I workloads across on-chip capacities.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "c2b/core/capacity.h"
#include "c2b/laws/scaling.h"

namespace c2b::bench {
namespace {

struct WorkloadWs {
  std::string name;
  c2b::WorkingSetFn working_set;  ///< lines as a function of problem size Z
  std::string law;
};

std::vector<WorkloadWs> working_sets() {
  // From Table I's (computation, memory) columns: Y(Z) = Z^{mem/comp}.
  return {
      {"TMM", [](double z) { return std::pow(z, 2.0 / 3.0); }, "Y = Z^{2/3}"},
      {"band sparse", [](double z) { return z; }, "Y = Z"},
      {"stencil", [](double z) { return z; }, "Y = Z"},
      {"FFT", [](double z) { return z * std::log2(std::max(2.0, z)); }, "Y = Z log2 Z"},
  };
}

void bm_capacity_bound(benchmark::State& state) {
  const auto ws = working_sets()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c2b::capacity_bounded_problem_size(ws.working_set, 1 << 16, 1.0, 1e15));
  }
}
BENCHMARK(bm_capacity_bound);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  for (const double llc_lines : {8192.0, 65536.0}) {
    Table table({"workload", "working set Y(Z)", "LLC-bounded max Z", "Z = 1e6 regime"}, 5);
    for (const WorkloadWs& ws : working_sets()) {
      const double bound =
          capacity_bounded_problem_size(ws.working_set, llc_lines, 1.0, 1e15);
      const BoundRegime regime = classify_problem(1e6, bound);
      table.add_row({ws.name, ws.law, bound,
                     std::string(regime == BoundRegime::kProcessorBound
                                     ? "processor-bound"
                                     : "memory-bound")});
    }
    emit("Section V: on-chip capacity-bounded problem size (LLC = " +
             std::to_string(static_cast<long long>(llc_lines)) + " lines)",
         table, "sec5_capacity_" + std::to_string(static_cast<long long>(llc_lines)));
  }

  std::printf("[shape] high-reuse workloads (TMM: Y = Z^{2/3}) tolerate much larger\n"
              "        problems on-chip than streaming ones (FFT: Y = Z log Z), so the\n"
              "        same LLC leaves them processor-bound while big-data apps with\n"
              "        working sets beyond the bound become memory-bound (Section V).\n");
  return run_benchmarks(argc, argv);
}
