#include "c2b/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace c2b {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_below(17), 17u);
}

TEST(Rng, UniformBelowZeroBoundIsZero) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(5);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) ++seen[rng.uniform_below(7)];
  for (const int count : seen) EXPECT_GT(count, 700);  // ~1000 each
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(100);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(rng.zipf(100, 0.9), 100u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(3);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = rng.zipf(1000, 1.2);
    if (k < 10) ++low;
    if (k >= 990) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(4);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(6);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, DeriveStreamSeedIsDeterministic) {
  EXPECT_EQ(Rng::derive_stream_seed(42, 3), Rng::derive_stream_seed(42, 3));
  EXPECT_NE(Rng::derive_stream_seed(42, 3), Rng::derive_stream_seed(42, 4));
  EXPECT_NE(Rng::derive_stream_seed(42, 3), Rng::derive_stream_seed(43, 3));
}

TEST(Rng, DeriveStreamSeedAvoidsLinearSchemeCollisions) {
  // The old per-core scheme `seed + 17 * c + 1` aliased systematically:
  // (seed=18, c=0) and (seed=1, c=1) both yielded 19, so two different
  // experiments shared identical traces. The splitmix derivation must not.
  EXPECT_NE(Rng::derive_stream_seed(18, 0), Rng::derive_stream_seed(1, 1));
  EXPECT_NE(Rng::derive_stream_seed(35, 0), Rng::derive_stream_seed(18, 1));
  EXPECT_NE(Rng::derive_stream_seed(0, 2), Rng::derive_stream_seed(17, 1));
}

TEST(Rng, DeriveStreamSeedDistinctOverSeedStreamGrid) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    for (std::uint64_t stream = 0; stream < 64; ++stream)
      seeds.push_back(Rng::derive_stream_seed(seed, stream));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Rng, DeriveStreamSeedProducesDivergentStreams) {
  Rng a(Rng::derive_stream_seed(7, 0));
  Rng b(Rng::derive_stream_seed(7, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(50);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace c2b
