#include <gtest/gtest.h>

#include <cmath>

#include "c2b/common/rng.h"
#include "c2b/metrics/amat.h"
#include "c2b/metrics/timeline.h"

namespace c2b {
namespace {

// ---------------------------------------------------------------------------
// Formula layer (Eqs. 1-3)

TEST(Amat, Equation1) {
  EXPECT_DOUBLE_EQ(amat({.hit_time = 3.0, .miss_rate = 0.4, .miss_penalty = 2.0}), 3.8);
  EXPECT_DOUBLE_EQ(amat({.hit_time = 1.0, .miss_rate = 0.0, .miss_penalty = 100.0}), 1.0);
}

TEST(Amat, RejectsInvalidInputs) {
  EXPECT_THROW((void)amat({.hit_time = 0.0, .miss_rate = 0.1, .miss_penalty = 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)amat({.hit_time = 1.0, .miss_rate = 1.5, .miss_penalty = 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)amat({.hit_time = 1.0, .miss_rate = 0.1, .miss_penalty = -1.0}),
               std::invalid_argument);
}

TEST(Camat, Equation2PaperExample) {
  // The worked Fig. 1 numbers: H=3, C_H=5/2, pMR=1/5, pAMP=2, C_M=1.
  const CamatParams p{.hit_time = 3.0,
                      .hit_concurrency = 2.5,
                      .pure_miss_rate = 0.2,
                      .pure_miss_penalty = 2.0,
                      .miss_concurrency = 1.0};
  EXPECT_DOUBLE_EQ(camat(p), 1.6);
}

TEST(Camat, SequentialSpecialCaseEqualsAmat) {
  const AmatParams a{.hit_time = 2.0, .miss_rate = 0.25, .miss_penalty = 8.0};
  EXPECT_DOUBLE_EQ(camat(camat_from_sequential(a)), amat(a));
}

TEST(Camat, RejectsSubUnityConcurrency) {
  EXPECT_THROW((void)camat({.hit_time = 1.0, .hit_concurrency = 0.5}), std::invalid_argument);
}

TEST(Concurrency, Equation3) {
  const AmatParams a{.hit_time = 3.0, .miss_rate = 0.4, .miss_penalty = 2.0};
  const CamatParams c{.hit_time = 3.0,
                      .hit_concurrency = 2.5,
                      .pure_miss_rate = 0.2,
                      .pure_miss_penalty = 2.0,
                      .miss_concurrency = 1.0};
  EXPECT_NEAR(concurrency(a, c), 3.8 / 1.6, 1e-12);
}

TEST(Apc, ReciprocalOfCamat) {
  EXPECT_DOUBLE_EQ(apc_from_camat(1.6), 0.625);
  EXPECT_THROW((void)apc_from_camat(0.0), std::invalid_argument);
}

TEST(DataStall, Equations5Through7) {
  EXPECT_DOUBLE_EQ(data_stall_amat(0.3, 3.8), 0.3 * 3.8);
  EXPECT_DOUBLE_EQ(data_stall_camat(0.3, 1.6, 0.25), 0.3 * 1.6 * 0.75);
  EXPECT_DOUBLE_EQ(cpu_time(1000.0, 0.5, 0.48, 2.0), 1000.0 * 0.98 * 2.0);
  EXPECT_THROW((void)data_stall_camat(0.3, 1.6, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timeline analyzer — the paper's Fig. 1 example, exactly.

TEST(Timeline, Figure1WorkedExample) {
  const TimelineMetrics m = analyze_timeline(figure1_example_timeline());
  EXPECT_EQ(m.accesses, 5u);
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.pure_misses, 1u);
  EXPECT_EQ(m.hit_cycle_count, 6u);
  EXPECT_EQ(m.hit_access_cycles, 15u);
  EXPECT_EQ(m.pure_miss_cycle_count, 2u);
  EXPECT_EQ(m.memory_active_cycles, 8u);

  EXPECT_DOUBLE_EQ(m.amat_params.hit_time, 3.0);
  EXPECT_DOUBLE_EQ(m.amat_params.miss_rate, 0.4);
  EXPECT_DOUBLE_EQ(m.amat_params.miss_penalty, 2.0);
  EXPECT_DOUBLE_EQ(m.amat_value, 3.8);

  EXPECT_DOUBLE_EQ(m.camat_params.hit_concurrency, 2.5);
  EXPECT_DOUBLE_EQ(m.camat_params.pure_miss_rate, 0.2);
  EXPECT_DOUBLE_EQ(m.camat_params.pure_miss_penalty, 2.0);
  EXPECT_DOUBLE_EQ(m.camat_params.miss_concurrency, 1.0);
  EXPECT_DOUBLE_EQ(m.camat_value, 1.6);
  EXPECT_DOUBLE_EQ(m.camat_direct, 1.6);
  EXPECT_DOUBLE_EQ(m.apc, 0.625);
  EXPECT_NEAR(m.concurrency_c, 3.8 / 1.6, 1e-12);
}

TEST(Timeline, SingleSequentialHit) {
  const TimelineMetrics m = analyze_timeline({{.start_cycle = 0, .hit_cycles = 2}});
  EXPECT_DOUBLE_EQ(m.amat_value, 2.0);
  EXPECT_DOUBLE_EQ(m.camat_value, 2.0);
  EXPECT_DOUBLE_EQ(m.concurrency_c, 1.0);
}

TEST(Timeline, SequentialAccessesCollapseToAmat) {
  // Strictly serialized accesses: C-AMAT must equal AMAT.
  std::vector<TimelineAccess> accesses;
  std::uint64_t t = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint32_t penalty = (i % 5 == 0) ? 7u : 0u;
    accesses.push_back({.start_cycle = t, .hit_cycles = 3, .miss_penalty_cycles = penalty});
    t += 3 + penalty;
  }
  const TimelineMetrics m = analyze_timeline(accesses);
  EXPECT_NEAR(m.camat_value, m.amat_value, 1e-12);
  EXPECT_NEAR(m.concurrency_c, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.camat_params.hit_concurrency, 1.0);
  EXPECT_DOUBLE_EQ(m.camat_params.miss_concurrency, 1.0);
}

TEST(Timeline, FullyOverlappedHitsDivideByConcurrency) {
  // k identical overlapping hits: C_H = k, C-AMAT = H/k.
  std::vector<TimelineAccess> accesses(4, {.start_cycle = 10, .hit_cycles = 3});
  const TimelineMetrics m = analyze_timeline(accesses);
  EXPECT_DOUBLE_EQ(m.camat_params.hit_concurrency, 4.0);
  EXPECT_DOUBLE_EQ(m.camat_value, 0.75);
}

TEST(Timeline, MissHiddenByHitIsNotPure) {
  // A miss whose penalty overlaps another access's hit window entirely.
  const TimelineMetrics m = analyze_timeline({
      {.start_cycle = 0, .hit_cycles = 2, .miss_penalty_cycles = 3},  // miss 2-4
      {.start_cycle = 2, .hit_cycles = 3, .miss_penalty_cycles = 0},  // hit 2-4
  });
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.pure_misses, 0u);
  EXPECT_DOUBLE_EQ(m.camat_params.pure_miss_rate, 0.0);
}

TEST(Timeline, EmptyThrows) { EXPECT_THROW(analyze_timeline({}), std::invalid_argument); }

TEST(Timeline, ZeroHitCyclesThrows) {
  EXPECT_THROW(analyze_timeline({{.start_cycle = 0, .hit_cycles = 0}}), std::invalid_argument);
}

// Property sweep: on random timelines the Eq. (2) decomposition must equal
// the direct measurement (C-AMAT = memory-active cycles / accesses), C >= 1,
// C-AMAT <= AMAT, and APC = 1/C-AMAT.
class TimelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineProperty, DecompositionIdentityHolds) {
  Rng rng(GetParam());
  std::vector<TimelineAccess> accesses;
  std::uint64_t t = 0;
  const int count = 20 + static_cast<int>(rng.uniform_below(200));
  for (int i = 0; i < count; ++i) {
    t += rng.uniform_below(4);  // bursty arrivals -> overlap
    TimelineAccess a;
    a.start_cycle = t;
    a.hit_cycles = 1 + static_cast<std::uint32_t>(rng.uniform_below(4));
    a.miss_penalty_cycles =
        rng.bernoulli(0.3) ? 1 + static_cast<std::uint32_t>(rng.uniform_below(20)) : 0;
    accesses.push_back(a);
  }
  const TimelineMetrics m = analyze_timeline(accesses);
  EXPECT_NEAR(m.camat_value, m.camat_direct, 1e-9) << "Eq. (2) decomposition broke";
  EXPECT_NEAR(m.apc * m.camat_direct, 1.0, 1e-9);
  EXPECT_GE(m.concurrency_c, 1.0 - 1e-9);
  EXPECT_LE(m.camat_value, m.amat_value + 1e-9);
  EXPECT_GE(m.camat_params.hit_concurrency, 1.0);
  EXPECT_GE(m.camat_params.miss_concurrency, 1.0 - 1e-12);
  EXPECT_LE(m.camat_params.pure_miss_rate, m.amat_params.miss_rate + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomTimelines, TimelineProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace c2b

namespace c2b {
namespace {

TEST(RecursiveCamat, SingleLevelMatchesTwoTermForm) {
  // One cache level over DRAM: C-AMAT = H/C_H + pMR * kappa * C-AMAT_mem,
  // the Eq. (2) shape with pAMP/C_M folded into kappa * C-AMAT_mem.
  const std::vector<CamatLevel> levels{{.hit_time = 3.0,
                                        .hit_concurrency = 2.5,
                                        .pure_miss_rate = 0.2,
                                        .kappa = 1.0}};
  EXPECT_DOUBLE_EQ(recursive_camat(levels, 10.0), 3.0 / 2.5 + 0.2 * 10.0);
}

TEST(RecursiveCamat, TwoLevelComposition) {
  const std::vector<CamatLevel> levels{
      {.hit_time = 3.0, .hit_concurrency = 3.0, .pure_miss_rate = 0.1, .kappa = 0.8},
      {.hit_time = 12.0, .hit_concurrency = 2.0, .pure_miss_rate = 0.3, .kappa = 0.9},
  };
  const double l2 = 12.0 / 2.0 + 0.3 * 0.9 * 100.0;
  EXPECT_DOUBLE_EQ(recursive_camat(levels, 100.0), 3.0 / 3.0 + 0.1 * 0.8 * l2);
}

TEST(RecursiveCamat, OverlapFactorHidesLatency) {
  std::vector<CamatLevel> levels{
      {.hit_time = 2.0, .hit_concurrency = 1.0, .pure_miss_rate = 0.5, .kappa = 1.0}};
  const double exposed = recursive_camat(levels, 50.0);
  levels[0].kappa = 0.2;  // deep overlap hides 80% of the lower level
  EXPECT_LT(recursive_camat(levels, 50.0), exposed);
}

TEST(RecursiveCamat, PerfectCacheIgnoresMemory) {
  const std::vector<CamatLevel> levels{
      {.hit_time = 1.0, .hit_concurrency = 2.0, .pure_miss_rate = 0.0, .kappa = 1.0}};
  EXPECT_DOUBLE_EQ(recursive_camat(levels, 1e9), 0.5);
}

TEST(RecursiveCamat, Validation) {
  EXPECT_THROW((void)recursive_camat({}, 10.0), std::invalid_argument);
  EXPECT_THROW((void)recursive_camat({{.hit_time = -1.0}}, 10.0), std::invalid_argument);
  EXPECT_THROW((void)recursive_camat({{.hit_time = 1.0}}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
