#include "c2b/sim/cache/coherence.h"

#include <gtest/gtest.h>

#include "c2b/sim/system/system.h"
#include "c2b/trace/trace.h"

namespace c2b::sim {
namespace {

// ---------------------------------------------------------------------------
// Directory unit behavior

TEST(Directory, ReadSharingAccumulates) {
  Directory dir(4);
  dir.on_read(0, 100);
  dir.on_read(1, 100);
  dir.on_read(2, 100);
  EXPECT_EQ(dir.sharer_count(100), 3u);
  EXPECT_TRUE(dir.is_sharer(1, 100));
  EXPECT_EQ(dir.owner_of(100), Directory::kNoOwner);
  EXPECT_EQ(dir.invalidations_sent(), 0u);
}

TEST(Directory, WriteInvalidatesOtherSharers) {
  Directory dir(4);
  dir.on_read(0, 7);
  dir.on_read(1, 7);
  dir.on_read(2, 7);
  const auto w = dir.on_write(1, 7);
  EXPECT_EQ(w.invalidated_mask, 0b101u);  // cores 0 and 2
  EXPECT_FALSE(w.owner_transfer);
  EXPECT_EQ(dir.owner_of(7), 1u);
  EXPECT_EQ(dir.sharer_count(7), 1u);
  EXPECT_EQ(dir.invalidations_sent(), 2u);
  EXPECT_EQ(dir.upgrade_requests(), 1u);  // core 1 upgraded S -> M
}

TEST(Directory, WriteToOwnModifiedLineIsFree) {
  Directory dir(2);
  dir.on_write(0, 9);
  const auto again = dir.on_write(0, 9);
  EXPECT_EQ(again.invalidated_mask, 0u);
  EXPECT_FALSE(again.owner_transfer);
  EXPECT_EQ(dir.ownership_transfers(), 0u);
}

TEST(Directory, ReadOfRemoteModifiedTransfersOwnership) {
  Directory dir(2);
  dir.on_write(0, 5);
  const auto r = dir.on_read(1, 5);
  EXPECT_TRUE(r.owner_transfer);
  EXPECT_EQ(r.previous_owner, 0u);
  EXPECT_EQ(dir.owner_of(5), Directory::kNoOwner);  // downgraded to shared
  EXPECT_EQ(dir.sharer_count(5), 2u);
  EXPECT_EQ(dir.ownership_transfers(), 1u);
}

TEST(Directory, WriteStealsRemoteOwnership) {
  Directory dir(2);
  dir.on_write(0, 5);
  const auto w = dir.on_write(1, 5);
  EXPECT_TRUE(w.owner_transfer);
  EXPECT_EQ(w.previous_owner, 0u);
  EXPECT_EQ(w.invalidated_mask, 0b1u);  // core 0's copy dies
  EXPECT_EQ(dir.owner_of(5), 1u);
}

TEST(Directory, EvictionClearsState) {
  Directory dir(2);
  dir.on_read(0, 3);
  dir.on_read(1, 3);
  dir.on_evict(0, 3);
  EXPECT_FALSE(dir.is_sharer(0, 3));
  EXPECT_TRUE(dir.is_sharer(1, 3));
  dir.on_evict(1, 3);
  EXPECT_EQ(dir.tracked_lines(), 0u);  // entry reclaimed
  // A later write finds no stale sharers.
  EXPECT_EQ(dir.on_write(0, 3).invalidated_mask, 0u);
}

TEST(Directory, BoundsChecked) {
  EXPECT_THROW(Directory(0), std::invalid_argument);
  EXPECT_THROW(Directory(65), std::invalid_argument);
  Directory dir(2);
  EXPECT_THROW(dir.on_read(2, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end through the hierarchy/system

SystemConfig coherent_system(std::uint32_t cores) {
  SystemConfig config;
  config.hierarchy.cores = cores;
  config.hierarchy.coherence = true;
  config.hierarchy.l1_geometry = {.size_bytes = 8 * 1024, .line_bytes = 64, .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  config.hierarchy.noc.nodes = std::max(4u, cores);
  return config;
}

/// Each core alternates load/store on ONE shared line, with filler computes.
/// The accesses are dependent (lock-style read-modify-write chain): without
/// the dependency a deep ROB simply overlaps the invalidation latency away.
Trace ping_pong_trace(std::uint64_t address, std::uint64_t n) {
  Trace t;
  t.name = "ping_pong";
  for (std::uint64_t i = 0; i < n; ++i) {
    t.records.push_back(
        {.kind = InstrKind::kLoad, .depends_on_prev_mem = true, .address = address});
    t.records.push_back({.kind = InstrKind::kCompute});
    t.records.push_back(
        {.kind = InstrKind::kStore, .depends_on_prev_mem = true, .address = address});
    t.records.push_back({.kind = InstrKind::kCompute});
  }
  return t;
}

TEST(CoherentSystem, PingPongGeneratesInvalidations) {
  const SystemConfig config = coherent_system(2);
  const std::vector<Trace> traces{ping_pong_trace(0, 4000), ping_pong_trace(0, 4000)};
  const sim::SystemResult r = simulate_system(config, traces);
  EXPECT_GT(r.hierarchy.coherence_invalidations, 100u);
  EXPECT_GT(r.hierarchy.coherence_owner_transfers, 100u);
}

TEST(CoherentSystem, DisjointLinesStayQuiet) {
  const SystemConfig config = coherent_system(2);
  const std::vector<Trace> traces{ping_pong_trace(0, 4000), ping_pong_trace(1 << 16, 4000)};
  const sim::SystemResult r = simulate_system(config, traces);
  EXPECT_EQ(r.hierarchy.coherence_invalidations, 0u);
  EXPECT_EQ(r.hierarchy.coherence_owner_transfers, 0u);
}

TEST(CoherentSystem, SharingIsSlowerThanPrivacy) {
  const SystemConfig config = coherent_system(2);
  const sim::SystemResult shared = simulate_system(
      config, {ping_pong_trace(0, 4000), ping_pong_trace(0, 4000)});
  const sim::SystemResult disjoint = simulate_system(
      config, {ping_pong_trace(0, 4000), ping_pong_trace(1 << 16, 4000)});
  EXPECT_GT(shared.cycles, disjoint.cycles * 2);
}

TEST(CoherentSystem, FalseSharingBehavesLikeSharing) {
  // Two different addresses in the SAME 64-byte line ping-pong as hard as
  // true sharing does.
  const SystemConfig config = coherent_system(2);
  const sim::SystemResult false_shared = simulate_system(
      config, {ping_pong_trace(0, 3000), ping_pong_trace(32, 3000)});
  EXPECT_GT(false_shared.hierarchy.coherence_invalidations, 100u);
}

TEST(CoherentSystem, ReadOnlySharingCostsNothing) {
  Trace reader;
  for (int i = 0; i < 8000; ++i) {
    reader.records.push_back({.kind = InstrKind::kLoad, .address = 0});
    reader.records.push_back({.kind = InstrKind::kCompute});
  }
  const SystemConfig config = coherent_system(2);
  const sim::SystemResult r = simulate_system(config, {reader, reader});
  EXPECT_EQ(r.hierarchy.coherence_invalidations, 0u);
  // After the cold miss everything hits locally.
  EXPECT_LT(r.hierarchy.l1_miss_ratio, 0.01);
}

TEST(CoherentSystem, CoherenceOffMatchesOldBehavior) {
  SystemConfig off = coherent_system(2);
  off.hierarchy.coherence = false;
  const sim::SystemResult r = simulate_system(
      off, {ping_pong_trace(0, 2000), ping_pong_trace(0, 2000)});
  EXPECT_EQ(r.hierarchy.coherence_invalidations, 0u);
  EXPECT_EQ(r.hierarchy.coherence_owner_transfers, 0u);
}

TEST(CoherentSystem, RejectsTooManyCores) {
  SystemConfig config = coherent_system(2);
  config.hierarchy.cores = 65;
  config.hierarchy.coherence = true;
  Trace t = ping_pong_trace(0, 10);
  EXPECT_THROW(simulate_system(config, {t}), std::invalid_argument);
}

}  // namespace
}  // namespace c2b::sim
