#include <gtest/gtest.h>

#include "c2b/common/rng.h"
#include "c2b/sim/cache/cache.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b::sim {
namespace {

CacheGeometry geometry(std::uint64_t size = 2048, std::uint32_t assoc = 4) {
  return {.size_bytes = size, .line_bytes = 64, .associativity = assoc};
}

// ---------------------------------------------------------------------------
// Dirty tracking / write-back bookkeeping

TEST(DirtyLines, WriteProbeMarksDirty) {
  CacheArray cache(geometry());
  cache.fill(0);
  EXPECT_FALSE(cache.is_dirty(0));
  cache.probe(0, /*mark_dirty=*/true);
  EXPECT_TRUE(cache.is_dirty(0));
  EXPECT_FALSE(cache.is_dirty(64));  // absent line is not dirty
}

TEST(DirtyLines, WriteAllocateFillIsDirty) {
  CacheArray cache(geometry());
  cache.fill(0, /*dirty=*/true);
  EXPECT_TRUE(cache.is_dirty(0));
}

TEST(DirtyLines, DirtyVictimReported) {
  CacheArray cache(geometry(512, 2));  // 4 sets, 2 ways
  const std::uint64_t stride = 4 * 64;
  cache.fill(0 * stride, true);
  cache.fill(1 * stride, false);
  cache.probe(1 * stride);  // make line 0 the LRU victim
  const auto evicted = cache.fill(2 * stride);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->address, 0u);
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(cache.dirty_evictions(), 1u);
}

TEST(DirtyLines, RefillMergesDirtyBit) {
  CacheArray cache(geometry());
  cache.fill(0, true);
  cache.fill(0, false);  // re-fill clean must not launder the dirty bit
  EXPECT_TRUE(cache.is_dirty(0));
}

TEST(DirtyLines, WritebacksFlowThroughHierarchy) {
  SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 4 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 64 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 13;  // thrash both levels
  p.zipf_exponent = 0.2;
  p.f_mem = 0.8;
  p.write_ratio = 0.5;
  p.seed = 3;
  const Trace t = ZipfStreamGenerator(p).generate(60000);
  const SystemResult r = simulate_single_core(config, t);
  EXPECT_GT(r.hierarchy.l1_writebacks, 1000u);
  EXPECT_GT(r.hierarchy.l2_writebacks, 500u);
  // Read-only version generates none.
  ZipfStreamGenerator::Params ro = p;
  ro.write_ratio = 0.0;
  const SystemResult clean = simulate_single_core(config, ZipfStreamGenerator(ro).generate(60000));
  EXPECT_EQ(clean.hierarchy.l1_writebacks, 0u);
  EXPECT_EQ(clean.hierarchy.l2_writebacks, 0u);
}

TEST(DirtyLines, WritebackTrafficSlowsDemandMisses) {
  SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 4 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 64 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 13;
  p.zipf_exponent = 0.2;
  p.f_mem = 0.8;
  p.seed = 3;
  p.write_ratio = 0.0;
  const SystemResult reads = simulate_single_core(config, ZipfStreamGenerator(p).generate(50000));
  p.write_ratio = 0.6;
  const SystemResult writes = simulate_single_core(config, ZipfStreamGenerator(p).generate(50000));
  EXPECT_GT(writes.cores[0].cpi, reads.cores[0].cpi);
}

// ---------------------------------------------------------------------------
// Replacement policies

TEST(Replacement, PlruRequiresPow2Associativity) {
  CacheGeometry g{.size_bytes = 192 * 4, .line_bytes = 64, .associativity = 3};
  EXPECT_THROW(CacheArray(g, ReplacementPolicy::kTreePlru), std::invalid_argument);
  CacheArray ok(geometry(2048, 4), ReplacementPolicy::kTreePlru);
  EXPECT_EQ(ok.policy(), ReplacementPolicy::kTreePlru);
}

TEST(Replacement, PlruNeverEvictsMostRecentlyUsed) {
  CacheArray cache(geometry(512, 8), ReplacementPolicy::kTreePlru);  // 1 set, 8 ways
  for (std::uint64_t line = 0; line < 8; ++line) cache.fill(line * 64);
  Rng rng(4);
  std::uint64_t last_touched = 0;
  for (int i = 0; i < 400; ++i) {
    last_touched = rng.uniform_below(8);
    if (!cache.probe(last_touched * 64)) cache.fill(last_touched * 64);
    const std::uint64_t incoming = 8 + rng.uniform_below(100);
    const auto evicted = cache.fill(incoming * 64);
    if (evicted.has_value()) {
      EXPECT_NE(evicted->address, last_touched * 64) << "PLRU evicted the MRU line";
    }
    cache.invalidate(incoming * 64);  // keep the resident set stable
  }
}

TEST(Replacement, AllPoliciesCaptureSmallLoop) {
  for (const auto policy : {ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru,
                            ReplacementPolicy::kRandom}) {
    CacheArray cache(geometry(2048, 4), policy);  // 32 lines
    for (int rep = 0; rep < 50; ++rep) {
      for (std::uint64_t line = 0; line < 16; ++line) {
        if (!cache.probe(line * 64)) cache.fill(line * 64);
      }
    }
    EXPECT_LT(cache.miss_ratio(), 0.05) << "policy " << static_cast<int>(policy);
  }
}

TEST(Replacement, LruBeatsRandomOnLoopingReuse) {
  // A looping working set slightly larger than one set's capacity is LRU's
  // worst case... but with a Zipf-skewed stream LRU's recency tracking wins.
  auto run = [&](ReplacementPolicy policy) {
    CacheArray cache(geometry(4096, 4), policy);  // 64 lines
    Rng rng(9);
    for (int i = 0; i < 40000; ++i) {
      const std::uint64_t line = rng.zipf(512, 1.0);
      if (!cache.probe(line * 64)) cache.fill(line * 64);
    }
    return cache.miss_ratio();
  };
  EXPECT_LT(run(ReplacementPolicy::kLru), run(ReplacementPolicy::kRandom) + 0.02);
}

TEST(Replacement, RandomIsDeterministicPerArray) {
  auto run = [] {
    CacheArray cache(geometry(512, 4), ReplacementPolicy::kRandom);
    std::vector<std::uint64_t> evictions;
    for (std::uint64_t line = 0; line < 64; ++line) {
      const auto evicted = cache.fill(line * 64 * 2);  // all map to few sets
      if (evicted.has_value()) evictions.push_back(evicted->address);
    }
    return evictions;
  };
  EXPECT_EQ(run(), run());
}

TEST(Replacement, RandomVictimStreamsDecorrelatePerInstance) {
  // Each array's xorshift state is Rng::derive_stream_seed(base, stream):
  // the same stream replays the same victim sequence, distinct streams
  // replay decorrelated ones (so L1s in a multi-cache configuration don't
  // all evict in lockstep), and the default constructor is stream 0.
  auto evictions = [](std::uint64_t stream) {
    CacheArray cache(geometry(512, 4), ReplacementPolicy::kRandom, stream);
    std::vector<std::uint64_t> out;
    for (std::uint64_t line = 0; line < 64; ++line) {
      const auto evicted = cache.fill(line * 64 * 2);
      if (evicted.has_value()) out.push_back(evicted->address);
    }
    return out;
  };
  EXPECT_EQ(evictions(1), evictions(1));
  EXPECT_NE(evictions(0), evictions(1));
  EXPECT_NE(evictions(1), evictions(2));

  CacheArray defaulted(geometry(512, 4), ReplacementPolicy::kRandom);
  std::vector<std::uint64_t> default_evictions;
  for (std::uint64_t line = 0; line < 64; ++line) {
    const auto evicted = defaulted.fill(line * 64 * 2);
    if (evicted.has_value()) default_evictions.push_back(evicted->address);
  }
  EXPECT_EQ(default_evictions, evictions(0));
}

TEST(Replacement, PlruAssocOneIsDirectMapped) {
  // Degenerate tree: no internal nodes, the single way is always the
  // victim. Must behave exactly like LRU at associativity 1.
  CacheArray plru(geometry(512, 1), ReplacementPolicy::kTreePlru);
  CacheArray lru(geometry(512, 1), ReplacementPolicy::kLru);
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.uniform_below(64) * 64;
    const bool hit = plru.probe(addr);
    ASSERT_EQ(hit, lru.probe(addr));
    if (!hit) {
      const auto ep = plru.fill(addr);
      const auto el = lru.fill(addr);
      ASSERT_EQ(ep.has_value(), el.has_value());
      if (ep.has_value()) {
        ASSERT_EQ(ep->address, el->address);
      }
    }
  }
  EXPECT_EQ(plru.hit_count(), lru.hit_count());
}

TEST(Replacement, PlruMaxAssociativityNeverEvictsMru) {
  // Associativity 64 is the ceiling the per-set uint64 bit tree supports
  // (63 internal nodes). Same MRU-protection property as the 8-way test.
  CacheArray cache(geometry(64 * 64, 64), ReplacementPolicy::kTreePlru);  // 1 set
  for (std::uint64_t line = 0; line < 64; ++line) cache.fill(line * 64);
  EXPECT_EQ(cache.hit_count(), 0u);
  for (std::uint64_t line = 0; line < 64; ++line) EXPECT_TRUE(cache.probe(line * 64));
  Rng rng(5);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t last_touched = rng.uniform_below(64);
    if (!cache.probe(last_touched * 64)) cache.fill(last_touched * 64);
    const std::uint64_t incoming = 64 + rng.uniform_below(1000);
    const auto evicted = cache.fill(incoming * 64);
    if (evicted.has_value()) {
      EXPECT_NE(evicted->address, last_touched * 64) << "PLRU evicted the MRU line";
    }
    cache.invalidate(incoming * 64);  // keep the resident set stable
  }
}

// Property: on two ways the PLRU tree is a single bit pointing at the
// not-most-recently-touched way, which is exactly true LRU. Random
// probe/fill/invalidate streams must agree on every hit, every victim and
// every dirty bit (both policies prefer the first invalid way, so the
// equivalence survives invalidation holes).
class PlruLruEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlruLruEquivalence, TwoWayTreePlruIsExactLru) {
  CacheArray plru(geometry(1024, 2), ReplacementPolicy::kTreePlru);
  CacheArray lru(geometry(1024, 2), ReplacementPolicy::kLru);
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t addr = rng.uniform_below(128) * 64;
    if (rng.bernoulli(0.1)) {
      ASSERT_EQ(plru.invalidate(addr), lru.invalidate(addr));
      continue;
    }
    const bool dirty = rng.bernoulli(0.3);
    const bool hit = plru.probe(addr, dirty);
    ASSERT_EQ(hit, lru.probe(addr, dirty));
    if (!hit) {
      const auto ep = plru.fill(addr, dirty);
      const auto el = lru.fill(addr, dirty);
      ASSERT_EQ(ep.has_value(), el.has_value());
      if (ep.has_value()) {
        ASSERT_EQ(ep->address, el->address);
        ASSERT_EQ(ep->dirty, el->dirty);
      }
    }
  }
  EXPECT_EQ(plru.hit_count(), lru.hit_count());
  EXPECT_EQ(plru.dirty_evictions(), lru.dirty_evictions());
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, PlruLruEquivalence,
                         ::testing::Range<std::uint64_t>(600, 616));

}  // namespace
}  // namespace c2b::sim
