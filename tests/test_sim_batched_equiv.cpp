// Batch-equivalence stress tests (ctest label: perf, excluded from the
// quick suite). The batched replay engine — shared chunk store, lockstep
// SystemReplay driver, DSE-level equivalence-class scheduling — must be
// bitwise indistinguishable from per-point simulation at every thread
// count, with the chunk store's resident window staying O(chunk) even on
// wide batches over long streams.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "c2b/aps/dse.h"
#include "c2b/check/generators.h"
#include "c2b/check/oracles.h"
#include "c2b/common/rng.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/sim/system/batched.h"
#include "c2b/trace/chunk_store.h"
#include "c2b/trace/generators.h"

namespace c2b {
namespace {

/// Restores process-global execution state (thread count, sim cache) that
/// the DSE-level sweeps below mutate.
struct ExecDefaults {
  bool cache_was_enabled = exec::SimCache::global().enabled();
  ~ExecDefaults() {
    exec::set_thread_count(0);
    exec::SimCache::global().set_enabled(cache_was_enabled);
    exec::SimCache::global().clear();
  }
};

// The oracle harness's batch family at a different seed and a larger set
// count than the `c2b check` default, so the perf suite explores fresh
// design-point sets.
TEST(BatchEquivalence, OracleStressOnRandomDesignSets) {
  check::OracleOptions options;
  options.seed = 20'260'805;
  options.batch_sets = 12;
  const check::OracleReport report = check::run_batch_equivalence_oracle(options);
  for (const std::string& failure : report.failures) ADD_FAILURE() << failure;
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.checks, 0u);
}

// A wide batch (more members than kMaxBatchMembers, forcing the unit split)
// over one random scenario: batched results must match per-point
// simulate_design_time bitwise at thread counts 1 and 8, and repeating the
// sweep must reproduce it bitwise.
TEST(BatchEquivalence, WideBatchMatchesPerPointAtEveryThreadCount) {
  ExecDefaults restore;
  exec::SimCache::global().set_enabled(false);
  Rng rng(314159);
  const check::DseScenario scenario = check::gen_dse_scenario(rng);
  const GridSpace space = make_design_space(scenario.axes);

  std::vector<std::vector<double>> points;
  std::vector<double> reference_times;
  std::vector<std::uint64_t> reference_accesses;
  space.for_each([&](std::size_t, const std::vector<double>& point) {
    if (!design_feasible(scenario.context, point)) return;
    points.push_back(point);
  });
  ASSERT_FALSE(points.empty());

  exec::set_thread_count(1);
  for (const std::vector<double>& point : points) {
    std::uint64_t accesses = 0;
    reference_times.push_back(simulate_design_time(scenario.context, point, &accesses));
    reference_accesses.push_back(accesses);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    exec::set_thread_count(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {
      BatchReplayStats stats;
      const std::vector<BatchSimOutcome> outcomes =
          simulate_design_times_batched(scenario.context, points, &stats);
      ASSERT_EQ(outcomes.size(), points.size());
      EXPECT_EQ(stats.members, points.size());
      EXPECT_EQ(stats.cache_hits, 0u);
      for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(outcomes[i].time),
                  std::bit_cast<std::uint64_t>(reference_times[i]))
            << "threads " << threads << " repeat " << repeat << " point " << i;
        ASSERT_EQ(outcomes[i].memory_accesses, reference_accesses[i]);
      }
    }
  }
}

// Long-stream lockstep batch: 16 members sharing one 200k-record stream.
// Residency must stay within a handful of chunks (not O(stream)), and every
// member must match its solo replay bitwise.
TEST(BatchEquivalence, LongStreamResidencyStaysBounded) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 12;
  p.zipf_exponent = 0.8;
  p.f_mem = 0.3;
  p.write_ratio = 0.25;
  p.seed = 77;
  const std::uint64_t kRecords = 200'000;
  const std::size_t kMembers = 16;

  std::vector<sim::SystemConfig> configs(kMembers);
  for (std::size_t m = 0; m < kMembers; ++m) {
    configs[m].core.issue_width = 1u + static_cast<std::uint32_t>(m % 4) * 2u;
    if (configs[m].core.issue_width == 7) configs[m].core.issue_width = 8;
    configs[m].core.rob_size = 32u << (m % 3);
    configs[m].core.functional_units = 2u + static_cast<std::uint32_t>(m % 3);
  }

  TraceChunkStore store;
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), kRecords);
  store.set_readers(static_cast<std::uint32_t>(kMembers));
  std::vector<ChunkCursor> cursors;
  cursors.reserve(kMembers);
  std::vector<std::vector<TraceCursor*>> member_cursors(kMembers);
  for (std::size_t m = 0; m < kMembers; ++m) {
    cursors.emplace_back(store, id);
    member_cursors[m] = {&cursors.back()};
  }
  const std::vector<sim::SystemResult> batched =
      sim::simulate_system_batched(configs, member_cursors);

  // One lockstep quantum of spread across members -> at most a few chunks
  // resident; the stream itself is ~49 chunks.
  EXPECT_LE(store.stats().max_resident_records, 4u * store.chunk_capacity());
  EXPECT_EQ(store.stats().records_generated, kRecords);
  EXPECT_EQ(store.stats().regen_avoided_records, (kMembers - 1) * kRecords);

  for (std::size_t m = 0; m < kMembers; ++m) {
    GeneratorTraceCursor solo(std::make_unique<ZipfStreamGenerator>(p), kRecords);
    std::vector<TraceCursor*> solo_cursors{&solo};
    const sim::SystemResult reference =
        sim::simulate_system_streaming(configs[m], solo_cursors);
    EXPECT_EQ(batched[m].cycles, reference.cycles) << "member " << m;
    EXPECT_EQ(batched[m].cores[0].instructions, reference.cores[0].instructions);
    EXPECT_EQ(batched[m].cores[0].memory_accesses, reference.cores[0].memory_accesses);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[m].cores[0].cpi),
              std::bit_cast<std::uint64_t>(reference.cores[0].cpi));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[m].cores[0].camat.camat_value),
              std::bit_cast<std::uint64_t>(reference.cores[0].camat.camat_value));
  }
}

}  // namespace
}  // namespace c2b
