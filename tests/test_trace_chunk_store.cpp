#include "c2b/trace/chunk_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "c2b/trace/generators.h"

namespace c2b {
namespace {

ZipfStreamGenerator::Params zipf_params(std::uint64_t seed, double f_mem = 0.4) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 10;
  p.zipf_exponent = 0.9;
  p.f_mem = f_mem;
  p.write_ratio = 0.3;
  p.seed = seed;
  return p;
}

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  return a.kind == b.kind && a.depends_on_prev_mem == b.depends_on_prev_mem &&
         a.address == b.address;
}

std::size_t true_compute_run(const std::vector<TraceRecord>& records, std::size_t pos) {
  std::size_t run = 0;
  while (pos + run < records.size() && records[pos + run].kind == InstrKind::kCompute) ++run;
  return run;
}

TEST(ChunkStore, SingleReaderStreamMatchesMaterializedGenerate) {
  const auto p = zipf_params(41);
  const Trace materialized = ZipfStreamGenerator(p).generate(5'000);
  TraceChunkStore store(/*chunk_records=*/256);
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), 5'000);
  store.set_readers(1);
  ChunkCursor cursor(store, id);
  EXPECT_EQ(cursor.stream_length(), 5'000u);
  for (std::size_t i = 0; i < materialized.records.size(); ++i) {
    const TraceRecord* rec = cursor.peek();
    ASSERT_NE(rec, nullptr) << "cursor ended early at record " << i;
    ASSERT_TRUE(records_equal(*rec, materialized.records[i])) << "divergence at record " << i;
    cursor.advance();
  }
  EXPECT_EQ(cursor.peek(), nullptr);
  // 5000 records / 256-record chunks -> 20 chunks, each generated once.
  EXPECT_EQ(store.stats().chunks_generated, 20u);
  EXPECT_EQ(store.stats().records_generated, 5'000u);
  EXPECT_EQ(store.stats().chunks_shared, 0u);
  EXPECT_EQ(store.stats().regen_avoided_records, 0u);
}

TEST(ChunkStore, InterleavedReadersShareChunksAndBoundResidency) {
  const auto p = zipf_params(42);
  const Trace materialized = ZipfStreamGenerator(p).generate(4'000);
  TraceChunkStore store(/*chunk_records=*/128);
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), 4'000);
  store.set_readers(3);
  ChunkCursor a(store, id), b(store, id), c(store, id);
  // Lockstep rounds like the batched driver's: every reader reaches a common
  // target each round (a leads within the round, c trails), so the spread —
  // and with it the store's residency — stays within ~one chunk.
  std::size_t pa = 0, pb = 0, pc = 0;
  auto step = [&](ChunkCursor& cur, std::size_t& pos, std::size_t target) {
    for (; pos < target; ++pos) {
      const TraceRecord* rec = cur.peek();
      ASSERT_NE(rec, nullptr);
      ASSERT_TRUE(records_equal(*rec, materialized.records[pos]))
          << "reader diverged at record " << pos;
      cur.advance();
    }
  };
  std::size_t target = 0;
  while (target < 4'000) {
    target = std::min<std::size_t>(target + 96, 4'000);
    step(a, pa, target);
    step(b, pb, target);
    step(c, pc, target);
    // A 96-record round crosses at most one 128-record chunk boundary, so
    // no more than 2 chunks are resident at any point.
    ASSERT_LE(store.stats().max_resident_records, 2u * 128u);
  }
  EXPECT_EQ(a.peek(), nullptr);
  EXPECT_EQ(b.peek(), nullptr);
  EXPECT_EQ(c.peek(), nullptr);
  // Every chunk generated once and passed by two extra readers.
  const ChunkStoreStats& stats = store.stats();
  EXPECT_EQ(stats.chunks_generated, (4'000u + 127u) / 128u);
  EXPECT_EQ(stats.records_generated, 4'000u);
  EXPECT_EQ(stats.chunks_shared, 2u * stats.chunks_generated);
  EXPECT_EQ(stats.regen_avoided_records, 2u * 4'000u);
  // The access subset matches the trace's own memory-record count.
  std::uint64_t memory_records = 0;
  for (const TraceRecord& rec : materialized.records)
    if (rec.kind != InstrKind::kCompute) ++memory_records;
  EXPECT_EQ(stats.regen_avoided_accesses, 2u * memory_records);
}

TEST(ChunkStore, ComputeRunIsLowerBoundAndExactInsideChunks) {
  const auto p = zipf_params(43, /*f_mem=*/0.05);
  const Trace materialized = ZipfStreamGenerator(p).generate(3'000);
  TraceChunkStore store(/*chunk_records=*/64);
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), 3'000);
  store.set_readers(1);
  ChunkCursor cursor(store, id);
  for (std::size_t pos = 0; pos < materialized.records.size(); ++pos) {
    const std::size_t run = cursor.compute_run(48);
    const std::size_t truth = true_compute_run(materialized.records, pos);
    ASSERT_LE(run, 48u);
    ASSERT_LE(run, truth) << "compute_run overcounted at record " << pos;
    // Runs that end strictly inside the chunk (not at its boundary or the
    // caller's limit) must be exact.
    const std::size_t to_boundary = 64 - (pos % 64);
    if (truth < to_boundary && truth < 48) {
      ASSERT_EQ(run, truth) << "at record " << pos;
    }
    cursor.advance();
  }
}

TEST(ChunkStore, SkipCrossesChunkBoundaries) {
  const auto p = zipf_params(44);
  const Trace materialized = ZipfStreamGenerator(p).generate(2'000);
  TraceChunkStore store(/*chunk_records=*/128);
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), 2'000);
  store.set_readers(1);
  ChunkCursor cursor(store, id);
  std::size_t pos = 0;
  while (pos + 151 < 2'000) {  // stride > chunk, lands at shifting offsets
    cursor.skip(151);
    pos += 151;
    const TraceRecord* rec = cursor.peek();
    ASSERT_NE(rec, nullptr);
    ASSERT_TRUE(records_equal(*rec, materialized.records[pos]));
    ASSERT_EQ(cursor.position(), pos);
  }
}

TEST(ChunkStore, MultipleStreamsStayIndependent) {
  TraceChunkStore store(/*chunk_records=*/256);
  const auto p0 = zipf_params(45);
  const auto p1 = zipf_params(46);
  const std::size_t id0 = store.add_stream(std::make_unique<ZipfStreamGenerator>(p0), 1'000);
  const std::size_t id1 = store.add_stream(std::make_unique<ZipfStreamGenerator>(p1), 1'500);
  store.set_readers(1);
  EXPECT_EQ(store.stream_count(), 2u);
  EXPECT_EQ(store.stream_length(id0), 1'000u);
  EXPECT_EQ(store.stream_length(id1), 1'500u);
  const Trace t0 = ZipfStreamGenerator(p0).generate(1'000);
  const Trace t1 = ZipfStreamGenerator(p1).generate(1'500);
  ChunkCursor c0(store, id0), c1(store, id1);
  for (std::size_t i = 0; i < 1'500; ++i) {
    if (i < 1'000) {
      ASSERT_TRUE(records_equal(*c0.peek(), t0.records[i]));
      c0.advance();
    }
    ASSERT_TRUE(records_equal(*c1.peek(), t1.records[i]));
    c1.advance();
  }
  EXPECT_EQ(c0.peek(), nullptr);
  EXPECT_EQ(c1.peek(), nullptr);
}

TEST(ChunkStore, ResetAtStartIsANoOpButMidStreamThrows) {
  const auto p = zipf_params(47);
  TraceChunkStore store(/*chunk_records=*/128);
  const std::size_t id = store.add_stream(std::make_unique<ZipfStreamGenerator>(p), 1'000);
  store.set_readers(1);
  ChunkCursor cursor(store, id);
  cursor.reset();  // still at offset 0: fine
  const TraceRecord first = *cursor.peek();
  cursor.reset();  // peek() does not consume
  EXPECT_TRUE(records_equal(*cursor.peek(), first));
  cursor.advance();
  // Consumed chunks may already be freed for other readers; reset() after
  // consumption is out of contract.
  EXPECT_THROW(cursor.reset(), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
