#include "c2b/exec/sim_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace c2b::exec {
namespace {

TEST(SimCache, FindAfterInsertReturnsExactValue) {
  SimCache cache(64);
  EXPECT_FALSE(cache.find("k1").has_value());
  cache.insert("k1", {3.141592653589793, 42});
  const auto hit = cache.find("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 3.141592653589793);
  EXPECT_EQ(hit->memory_accesses, 42u);
  // Different key, even a near-miss, is a miss: hits are exact-string only.
  EXPECT_FALSE(cache.find("k1 ").has_value());
}

TEST(SimCache, StatsCountHitsAndMisses) {
  SimCache cache(64);
  (void)cache.find("a");   // miss
  cache.insert("a", {1.0, 1});
  (void)cache.find("a");   // hit
  (void)cache.find("a");   // hit
  (void)cache.find("b");   // miss
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SimCache, EvictsOldestWhenFull) {
  // Capacity is split across shards; a capacity of kShardCount gives each
  // shard room for one entry, so a second entry landing in the same shard
  // must evict the first.
  SimCache cache(16);
  for (int i = 0; i < 64; ++i)
    cache.insert("key" + std::to_string(i), {static_cast<double>(i), 0});
  const SimCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 16u);
}

TEST(SimCache, ClearDropsEntriesAndResetsStats) {
  SimCache cache(64);
  cache.insert("x", {1.0, 1});
  (void)cache.find("x");
  cache.clear();
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_FALSE(cache.find("x").has_value());
}

TEST(SimCache, DisabledCacheNeverHits) {
  SimCache cache(64);
  cache.set_enabled(false);
  EXPECT_FALSE(cache.enabled());
  cache.insert("x", {1.0, 1});
  EXPECT_FALSE(cache.find("x").has_value());
  cache.set_enabled(true);
  cache.insert("x", {1.0, 1});
  EXPECT_TRUE(cache.find("x").has_value());
}

TEST(SimCache, InsertDoesNotOverwriteConcurrentRecompute) {
  // Two threads computing the same key insert the same deterministic value;
  // whichever lands second must leave the first intact (values are equal by
  // construction, so either is fine — we assert the stored value survives).
  SimCache cache(64);
  cache.insert("k", {2.5, 7});
  cache.insert("k", {2.5, 7});
  const auto hit = cache.find("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 2.5);
  EXPECT_EQ(hit->memory_accesses, 7u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SimCache, ParallelInsertFindSmoke) {
  SimCache cache(1024);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        // Built with += rather than operator+ to dodge a GCC 12 -Wrestrict
        // false positive on the inlined concatenation.
        std::string key = "k";
        key += std::to_string(i % 50);
        cache.insert(key, {static_cast<double>(i % 50), static_cast<std::uint64_t>(i % 50)});
        const auto hit = cache.find(key);
        if (hit) {
          // Value must always be internally consistent with its key.
          EXPECT_EQ(hit->time, static_cast<double>(hit->memory_accesses));
        }
      }
      (void)t;
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(cache.stats().entries, 50u);
}

TEST(SimCache, GlobalIsSingleton) {
  SimCache& a = SimCache::global();
  SimCache& b = SimCache::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace c2b::exec
