#include "c2b/exec/sim_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace c2b::exec {
namespace {

namespace fs = std::filesystem;

TEST(SimCache, FindAfterInsertReturnsExactValue) {
  SimCache cache(64);
  EXPECT_FALSE(cache.find("k1").has_value());
  cache.insert("k1", {3.141592653589793, 42});
  const auto hit = cache.find("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 3.141592653589793);
  EXPECT_EQ(hit->memory_accesses, 42u);
  // Different key, even a near-miss, is a miss: hits are exact-string only.
  EXPECT_FALSE(cache.find("k1 ").has_value());
}

TEST(SimCache, StatsCountHitsAndMisses) {
  SimCache cache(64);
  (void)cache.find("a");   // miss
  cache.insert("a", {1.0, 1});
  (void)cache.find("a");   // hit
  (void)cache.find("a");   // hit
  (void)cache.find("b");   // miss
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SimCache, EvictsOldestWhenFull) {
  // Capacity is split across shards; a capacity of kShardCount gives each
  // shard room for one entry, so a second entry landing in the same shard
  // must evict the first.
  SimCache cache(16);
  for (int i = 0; i < 64; ++i)
    cache.insert("key" + std::to_string(i), {static_cast<double>(i), 0});
  const SimCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 16u);
}

TEST(SimCache, ClearDropsEntriesAndResetsStats) {
  SimCache cache(64);
  cache.insert("x", {1.0, 1});
  (void)cache.find("x");
  cache.clear();
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_FALSE(cache.find("x").has_value());
}

TEST(SimCache, DisabledCacheNeverHits) {
  SimCache cache(64);
  cache.set_enabled(false);
  EXPECT_FALSE(cache.enabled());
  cache.insert("x", {1.0, 1});
  EXPECT_FALSE(cache.find("x").has_value());
  cache.set_enabled(true);
  cache.insert("x", {1.0, 1});
  EXPECT_TRUE(cache.find("x").has_value());
}

TEST(SimCache, InsertDoesNotOverwriteConcurrentRecompute) {
  // Two threads computing the same key insert the same deterministic value;
  // whichever lands second must leave the first intact (values are equal by
  // construction, so either is fine — we assert the stored value survives).
  SimCache cache(64);
  cache.insert("k", {2.5, 7});
  cache.insert("k", {2.5, 7});
  const auto hit = cache.find("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 2.5);
  EXPECT_EQ(hit->memory_accesses, 7u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SimCache, ParallelInsertFindSmoke) {
  SimCache cache(1024);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        // Built with += rather than operator+ to dodge a GCC 12 -Wrestrict
        // false positive on the inlined concatenation.
        std::string key = "k";
        key += std::to_string(i % 50);
        cache.insert(key, {static_cast<double>(i % 50), static_cast<std::uint64_t>(i % 50)});
        const auto hit = cache.find(key);
        if (hit) {
          // Value must always be internally consistent with its key.
          EXPECT_EQ(hit->time, static_cast<double>(hit->memory_accesses));
        }
      }
      (void)t;
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(cache.stats().entries, 50u);
}

TEST(SimCache, GlobalIsSingleton) {
  SimCache& a = SimCache::global();
  SimCache& b = SimCache::global();
  EXPECT_EQ(&a, &b);
}

TEST(SimCache, SecondChanceKeepsHotKeyThroughFullEvictionCycles) {
  // Capacity 64 over 16 shards = 4 entries per shard. The hot key is
  // touched after every insert, so its referenced bit is always set when
  // the clock hand reaches it — it must survive a filler stream an order
  // of magnitude past capacity, while the untouched fillers churn.
  SimCache cache(64);
  cache.insert("hot", {123.5, 9});
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(cache.find("hot").has_value()) << "evicted after filler " << i;
    std::string filler = "filler";
    filler += std::to_string(i);
    cache.insert(filler, {static_cast<double>(i), 0});
  }
  const auto hit = cache.find("hot");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 123.5);
  EXPECT_EQ(hit->memory_accesses, 9u);
  const SimCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);  // the fillers did churn
  EXPECT_LE(stats.entries, 64u);
}

TEST(SimCache, EvictionAccountingIsExact) {
  // Without any hits, every entry is inserted exactly once and evicted at
  // most once: live entries + evictions must equal total distinct inserts.
  SimCache cache(16);  // one entry per shard — maximum churn
  constexpr int kInserts = 100;
  for (int i = 0; i < kInserts; ++i) {
    std::string key = "key";
    key += std::to_string(i);
    cache.insert(key, {static_cast<double>(i), 0});
  }
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries + stats.evictions, static_cast<std::uint64_t>(kInserts));
  EXPECT_LE(stats.entries, 16u);
}

TEST(SimCache, FindManyMatchesPerKeyFindAndSkipsEmptyKeys) {
  const std::vector<std::pair<std::string, SimCache::Value>> seed = {
      {"alpha", {1.0, 1}}, {"beta", {2.0, 2}}, {"gamma", {3.0, 3}}};
  const std::vector<std::string> probes = {"alpha", "", "absent", "gamma", "beta",
                                           "alpha", ""};

  SimCache per_key(64);
  for (const auto& [key, value] : seed) per_key.insert(key, value);
  std::vector<std::optional<SimCache::Value>> expected;
  for (const auto& key : probes)
    expected.push_back(key.empty() ? std::nullopt : per_key.find(key));

  SimCache bulk(64);
  bulk.insert_many(seed);
  std::uint64_t disk_hits = 123;  // must be zeroed even without a disk tier
  const auto got = bulk.find_many(probes, &disk_hits);

  ASSERT_EQ(got.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(got[i].has_value(), expected[i].has_value()) << "probe " << i;
    if (got[i].has_value()) {
      EXPECT_EQ(got[i]->time, expected[i]->time);
      EXPECT_EQ(got[i]->memory_accesses, expected[i]->memory_accesses);
    }
  }
  EXPECT_EQ(disk_hits, 0u);
  // Same telemetry as the per-key path: 4 hits, 1 miss — the two empty
  // probes are never probed and never counted.
  EXPECT_EQ(bulk.stats().hits, per_key.stats().hits);
  EXPECT_EQ(bulk.stats().misses, per_key.stats().misses);
  EXPECT_EQ(bulk.stats().hits, 4u);
  EXPECT_EQ(bulk.stats().misses, 1u);
}

class SimCacheDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("sim_cache_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path dir_;
};

TEST_F(SimCacheDiskTest, DiskHitIsPromotedIntoMemoryTier) {
  SimCache cache(64);
  ASSERT_TRUE(cache.attach_disk_tier(dir()));
  ASSERT_TRUE(cache.has_disk_tier());
  cache.insert("design", {7.25, 11});
  cache.flush_disk();
  cache.clear();  // memory tier gone, disk survives

  const auto first = cache.find("design");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->time, 7.25);
  SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);       // not a memory hit...
  EXPECT_EQ(stats.disk_hits, 1u);  // ...served from disk
  EXPECT_EQ(stats.misses, 0u);     // a disk hit is not a miss

  const auto second = cache.find("design");
  ASSERT_TRUE(second.has_value());
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);  // promotion made the second probe a memory hit
  EXPECT_EQ(stats.disk_hits, 1u);
  cache.detach_disk_tier();
}

TEST_F(SimCacheDiskTest, WarmRestartReattachServesFromDisk) {
  SimCache cache(64);
  ASSERT_TRUE(cache.attach_disk_tier(dir()));
  for (int i = 0; i < 20; ++i) {
    std::string key = "point";
    key += std::to_string(i);
    cache.insert(key, {static_cast<double>(i) + 0.5, static_cast<std::uint64_t>(i)});
  }
  cache.flush_disk();

  // Emulate a process restart: drop the tier and the memory state, then
  // re-attach the same directory.
  cache.detach_disk_tier();
  cache.clear();
  ASSERT_TRUE(cache.attach_disk_tier(dir()));
  EXPECT_EQ(cache.stats().disk_entries, 20u);
  for (int i = 0; i < 20; ++i) {
    std::string key = "point";
    key += std::to_string(i);
    const auto hit = cache.find(key);
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_EQ(hit->time, static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(cache.stats().disk_hits, 20u);
  cache.detach_disk_tier();
}

TEST_F(SimCacheDiskTest, ClearKeepsDiskTierContents) {
  SimCache cache(64);
  ASSERT_TRUE(cache.attach_disk_tier(dir()));
  cache.insert("kept", {1.5, 3});
  cache.flush_disk();
  cache.clear();
  EXPECT_TRUE(cache.has_disk_tier());
  EXPECT_GE(cache.stats().disk_entries, 1u);
  EXPECT_TRUE(cache.find("kept").has_value());
  cache.detach_disk_tier();
}

TEST_F(SimCacheDiskTest, FindManyAttributesDiskHitsPerCall) {
  SimCache cache(64);
  ASSERT_TRUE(cache.attach_disk_tier(dir()));
  cache.insert("a", {1.0, 1});
  cache.insert("b", {2.0, 2});
  cache.flush_disk();
  cache.clear();

  std::uint64_t disk_hits = 0;
  const auto got = cache.find_many({"a", "", "b", "absent"}, &disk_hits);
  EXPECT_EQ(disk_hits, 2u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());
  ASSERT_TRUE(got[2].has_value());
  EXPECT_FALSE(got[3].has_value());
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.disk_hits, 2u);
  EXPECT_EQ(stats.misses, 1u);  // "absent" missed both tiers
  cache.detach_disk_tier();
}

TEST_F(SimCacheDiskTest, AttachFailureLeavesCacheWorkingWithoutTier) {
  fs::create_directories(dir_.parent_path());
  {
    std::ofstream blocker(dir_);  // a *file* where the tier wants a directory
    blocker << "in the way";
  }
  SimCache cache(64);
  EXPECT_FALSE(cache.attach_disk_tier(dir()));
  EXPECT_FALSE(cache.has_disk_tier());
  cache.insert("still-works", {4.0, 4});
  EXPECT_TRUE(cache.find("still-works").has_value());
  EXPECT_EQ(cache.stats().disk_entries, 0u);
}

}  // namespace
}  // namespace c2b::exec
