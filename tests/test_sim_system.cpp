#include "c2b/sim/system/system.h"

#include <gtest/gtest.h>

#include <memory>

#include "c2b/trace/generators.h"

namespace c2b::sim {
namespace {

SystemConfig small_system(std::uint32_t cores = 1) {
  SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.core.functional_units = 4;
  config.hierarchy.cores = cores;
  config.hierarchy.l1_geometry = {.size_bytes = 8 * 1024, .line_bytes = 64, .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 128 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  config.hierarchy.noc.nodes = std::max(4u, cores);
  return config;
}

Trace compute_only(std::uint64_t n) {
  Trace t;
  t.name = "compute";
  t.records.assign(n, {.kind = InstrKind::kCompute});
  return t;
}

TEST(System, ComputeOnlyHitsIssueWidthLimit) {
  const SystemConfig config = small_system();
  const SystemResult r = simulate_single_core(config, compute_only(40000));
  // 4-wide with 4 FUs: CPI -> 0.25.
  EXPECT_NEAR(r.cores[0].cpi, 0.25, 0.02);
  EXPECT_EQ(r.cores[0].instructions, 40000u);
  EXPECT_DOUBLE_EQ(r.cores[0].f_mem, 0.0);
}

TEST(System, FunctionalUnitsGateComputeThroughput) {
  SystemConfig config = small_system();
  config.core.functional_units = 1;
  const SystemResult r = simulate_single_core(config, compute_only(20000));
  EXPECT_NEAR(r.cores[0].cpi, 1.0, 0.05);  // one compute per cycle
}

TEST(System, PerfectMemoryBeatsRealMemory) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 14;  // far larger than L1
  p.f_mem = 0.5;
  p.seed = 3;
  const Trace t = ZipfStreamGenerator(p).generate(60000);

  SystemConfig real = small_system();
  SystemConfig perfect = small_system();
  perfect.hierarchy.perfect_memory = true;
  const SystemResult r_real = simulate_single_core(real, t);
  const SystemResult r_perfect = simulate_single_core(perfect, t);
  EXPECT_LT(r_perfect.cores[0].cpi, r_real.cores[0].cpi);
  EXPECT_DOUBLE_EQ(r_perfect.hierarchy.l1_miss_ratio, 0.0);
  EXPECT_GT(r_real.hierarchy.l1_miss_ratio, 0.01);
}

TEST(System, LargerL1ReducesMissRatio) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 12;
  p.zipf_exponent = 0.6;
  p.f_mem = 0.6;
  p.seed = 7;
  const Trace t = ZipfStreamGenerator(p).generate(60000);

  SystemConfig small_l1 = small_system();
  SystemConfig big_l1 = small_system();
  big_l1.hierarchy.l1_geometry.size_bytes = 64 * 1024;
  const SystemResult r_small = simulate_single_core(small_l1, t);
  const SystemResult r_big = simulate_single_core(big_l1, t);
  EXPECT_LT(r_big.hierarchy.l1_miss_ratio, r_small.hierarchy.l1_miss_ratio);
  EXPECT_LE(r_big.cores[0].cpi, r_small.cores[0].cpi * 1.02);
}

TEST(System, PointerChaseHasNoMemoryConcurrency) {
  const Trace chase = PointerChaseGenerator(1 << 12, 2, 5).generate(40000);
  const SystemResult r = simulate_single_core(small_system(), chase);
  // Dependent misses cannot overlap: C stays near 1.
  EXPECT_LT(r.cores[0].camat.concurrency_c, 1.6);
  EXPECT_GT(r.cores[0].camat.concurrency_c, 0.99);
}

TEST(System, IndependentStreamHasMemoryConcurrency) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 14;
  p.zipf_exponent = 0.3;  // poor locality -> many misses
  p.f_mem = 0.7;
  p.seed = 11;
  const Trace t = ZipfStreamGenerator(p).generate(60000);
  const SystemResult r = simulate_single_core(small_system(), t);
  EXPECT_GT(r.cores[0].camat.concurrency_c, 1.5);
  EXPECT_GT(r.hierarchy.l1_mshr_merges + r.cores[0].camat.pure_misses, 0u);
}

TEST(System, DependentChaseSlowerThanIndependentStream) {
  // Same miss pressure, opposite dependency structure.
  const Trace chase = PointerChaseGenerator(1 << 13, 0, 5).generate(30000);
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 13;
  p.zipf_exponent = 0.0;  // uniform, similar miss ratio
  p.f_mem = 1.0;
  p.seed = 6;
  const Trace stream = ZipfStreamGenerator(p).generate(30000);
  const SystemResult r_chase = simulate_single_core(small_system(), chase);
  const SystemResult r_stream = simulate_single_core(small_system(), stream);
  EXPECT_GT(r_chase.cores[0].cpi, 1.5 * r_stream.cores[0].cpi);
}

TEST(System, DetectorCamatConsistentWithApc) {
  ZipfStreamGenerator::Params p;
  p.f_mem = 0.5;
  p.seed = 9;
  const Trace t = ZipfStreamGenerator(p).generate(40000);
  const SystemResult r = simulate_single_core(small_system(), t);
  const TimelineMetrics& m = r.cores[0].camat;
  EXPECT_NEAR(m.camat_value, m.camat_direct, 1e-9);
  EXPECT_NEAR(m.apc * m.camat_direct, 1.0, 1e-9);
}

TEST(System, ApcDecreasesDownTheHierarchy) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 15;  // misses reach DRAM
  p.zipf_exponent = 0.4;
  p.f_mem = 0.6;
  p.seed = 13;
  const Trace t = ZipfStreamGenerator(p).generate(80000);
  const SystemResult r = simulate_single_core(small_system(), t);
  ASSERT_GT(r.hierarchy.dram_accesses, 0u);
  EXPECT_GT(r.hierarchy.apc_l1, r.hierarchy.apc_l2);
  EXPECT_GT(r.hierarchy.apc_l2, r.hierarchy.apc_mem);
}

TEST(System, MultiCoreSharesL2AndFinishes) {
  const SystemConfig config = small_system(4);
  std::vector<Trace> traces;
  for (int c = 0; c < 4; ++c) {
    ZipfStreamGenerator::Params p;
    p.working_set_lines = 1 << 12;
    p.f_mem = 0.5;
    p.seed = 20 + static_cast<std::uint64_t>(c);
    traces.push_back(ZipfStreamGenerator(p).generate(20000));
  }
  const SystemResult r = simulate_system(config, traces);
  ASSERT_EQ(r.cores.size(), 4u);
  for (const CoreResult& core : r.cores) EXPECT_EQ(core.instructions, 20000u);
  // Write-back traffic shares the DRAM bus with demand misses, so the
  // saturated aggregate IPC is modest — but all cores must finish.
  EXPECT_GT(r.aggregate_ipc(), 0.1);
  EXPECT_EQ(r.cycles, std::max({r.cores[0].cycles, r.cores[1].cycles, r.cores[2].cycles,
                                r.cores[3].cycles}));
}

TEST(System, ContentionSlowsSharedHierarchy) {
  // One core running alone vs the same trace with 3 co-runners.
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 14;
  p.zipf_exponent = 0.2;
  p.f_mem = 0.8;
  p.seed = 33;
  const Trace t = ZipfStreamGenerator(p).generate(30000);

  const SystemResult alone = simulate_single_core(small_system(4), t);
  std::vector<Trace> contended{t};
  for (int c = 1; c < 4; ++c) {
    ZipfStreamGenerator::Params q = p;
    q.seed = 100 + static_cast<std::uint64_t>(c);
    contended.push_back(ZipfStreamGenerator(q).generate(30000));
  }
  const SystemResult shared = simulate_system(small_system(4), contended);
  EXPECT_GT(shared.cores[0].cycles, alone.cores[0].cycles);
}

TEST(System, RobLimitsMemoryParallelism) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 15;
  p.zipf_exponent = 0.1;
  p.f_mem = 0.9;
  p.seed = 44;
  const Trace t = ZipfStreamGenerator(p).generate(30000);
  SystemConfig tiny_rob = small_system();
  tiny_rob.core.rob_size = 8;
  SystemConfig big_rob = small_system();
  big_rob.core.rob_size = 256;
  const SystemResult r_tiny = simulate_single_core(tiny_rob, t);
  const SystemResult r_big = simulate_single_core(big_rob, t);
  EXPECT_LT(r_big.cores[0].cpi, r_tiny.cores[0].cpi);
}

TEST(System, ValidationRejectsBadInput) {
  SystemConfig config = small_system();
  EXPECT_THROW(simulate_system(config, {}), std::invalid_argument);
  const Trace t = compute_only(10);
  EXPECT_THROW(simulate_system(config, {t, t}), std::invalid_argument);  // 2 traces, 1 core
  config.core.issue_width = 0;
  EXPECT_THROW(simulate_single_core(config, t), std::invalid_argument);
}

TEST(System, DeterministicAcrossRuns) {
  ZipfStreamGenerator::Params p;
  p.f_mem = 0.5;
  p.seed = 55;
  const Trace t = ZipfStreamGenerator(p).generate(20000);
  const SystemResult a = simulate_single_core(small_system(), t);
  const SystemResult b = simulate_single_core(small_system(), t);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.cores[0].camat.camat_value, b.cores[0].camat.camat_value);
}

}  // namespace
}  // namespace c2b::sim
