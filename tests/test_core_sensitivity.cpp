#include "c2b/core/sensitivity.h"

#include <gtest/gtest.h>

namespace c2b {
namespace {

AppProfile base_app() {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::linear();
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile base_machine() {
  MachineProfile machine;
  machine.chip.total_area = 128.0;
  machine.chip.shared_area = 8.0;
  return machine;
}

TEST(Sensitivity, SignsMakePhysicalSense) {
  const C2BoundModel model(base_app(), base_machine());
  // Caches sized inside the responsive region of their miss power laws (a
  // saturated miss curve legitimately has zero marginal utility).
  const DesignPoint d{.n_cores = 4, .a0 = 4.0, .a1 = 4.0, .a2 = 16.0};
  const auto elasticities = time_elasticities(model, d);

  auto find = [&](const std::string& prefix) {
    for (const Elasticity& e : elasticities)
      if (e.parameter.starts_with(prefix)) return e.elasticity;
    ADD_FAILURE() << "missing parameter " << prefix;
    return 0.0;
  };
  // More resources -> less time (negative elasticity).
  EXPECT_LT(find("A0"), 0.0);
  EXPECT_LT(find("A1"), 0.0);
  EXPECT_LT(find("A2"), 0.0);
  EXPECT_LT(find("C_H"), 0.0);
  EXPECT_LT(find("C_M"), 0.0);
  EXPECT_LT(find("overlap"), 0.0);
  // More demand / latency -> more time (positive elasticity).
  EXPECT_GT(find("f_mem"), 0.0);
  EXPECT_GT(find("memory latency"), 0.0);
  EXPECT_GT(find("working set"), 0.0);
}

TEST(Sensitivity, SortedByMagnitude) {
  const C2BoundModel model(base_app(), base_machine());
  const auto elasticities =
      time_elasticities(model, {.n_cores = 8, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0});
  for (std::size_t i = 1; i < elasticities.size(); ++i)
    EXPECT_GE(std::fabs(elasticities[i - 1].elasticity),
              std::fabs(elasticities[i].elasticity));
}

TEST(Sensitivity, MemoryHungryAppIsLatencyOrCapacityBound) {
  AppProfile hungry = base_app();
  hungry.f_mem = 0.9;
  hungry.working_set_lines0 = 1 << 20;
  hungry.hit_concurrency = 1.0;
  hungry.miss_concurrency = 1.0;
  const C2BoundModel model(hungry, base_machine());
  const auto elasticities =
      time_elasticities(model, {.n_cores = 8, .a0 = 4.0, .a1 = 0.2, .a2 = 0.5});
  const BindingBound bound = classify_binding_bound(elasticities);
  EXPECT_NE(bound, BindingBound::kCompute);
}

TEST(Sensitivity, ComputeHeavyAppIsComputeBound) {
  AppProfile lean = base_app();
  lean.f_mem = 0.02;
  lean.working_set_lines0 = 256;  // fits everywhere
  const C2BoundModel model(lean, base_machine());
  const auto elasticities =
      time_elasticities(model, {.n_cores = 8, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0});
  EXPECT_EQ(classify_binding_bound(elasticities), BindingBound::kCompute);
  EXPECT_STREQ(to_string(BindingBound::kCompute), "compute-bound (core area / CPI_exe)");
}

TEST(Sensitivity, ElasticityMatchesClosedFormForPollack) {
  // With f_mem = 0 and phi0 = 0, T ~ A0^-1/2: elasticity must be -0.5.
  AppProfile pure = base_app();
  pure.f_mem = 0.0;
  MachineProfile machine = base_machine();
  machine.pollack.phi0 = 0.0;
  const C2BoundModel model(pure, machine);
  const auto elasticities =
      time_elasticities(model, {.n_cores = 4, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0});
  for (const Elasticity& e : elasticities) {
    if (e.parameter.starts_with("A0")) {
      EXPECT_NEAR(e.elasticity, -0.5, 1e-3);
    }
    if (e.parameter.starts_with("f_mem")) {
      EXPECT_NEAR(e.elasticity, 0.0, 1e-9);
    }
  }
}

TEST(Sensitivity, RejectsBadStep) {
  const C2BoundModel model(base_app(), base_machine());
  EXPECT_THROW((void)time_elasticities(model, {.n_cores = 2, .a0 = 1, .a1 = 1, .a2 = 1}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(classify_binding_bound({}), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
