#!/bin/sh
# End-to-end smoke for `c2b serve`: daemon on an ephemeral port with a
# disk cache attached, one DSE job over the wire, progress/metrics
# fetches, then a drained shutdown with exit 0. Driven by
# cli_serve_smoke.cmake (ctest) and reused verbatim by the CI serve job.
set -e

BIN="$1"
DIR="$2"
[ -x "$BIN" ] || { echo "usage: cli_serve_smoke.sh <c2b> <work dir>" >&2; exit 2; }

rm -rf "$DIR/serve_cache" "$DIR/serve_spool"
rm -f "$DIR/serve_port" "$DIR/serve.log"
mkdir -p "$DIR/serve_spool"

"$BIN" serve --port 0 --port-file "$DIR/serve_port" --spool "$DIR/serve_spool" \
       --cache-dir "$DIR/serve_cache" > "$DIR/serve.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$DIR/serve_port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: port file never appeared; daemon log:" >&2
    cat "$DIR/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$DIR/serve_port")

"$BIN" submit --port "$port" --workload stencil --instructions 2000 \
       --per-core-cap 1000 --wait
"$BIN" fetch --port "$port" --path /jobs/0 | grep -q '"status":"done"'
"$BIN" fetch --port "$port" --path /jobs/0/events | grep -q '"type":"job_end"'
"$BIN" fetch --port "$port" --path /metrics | grep -q 'serve.jobs.completed'
"$BIN" fetch --port "$port" --path /stats | grep -q '"done":1'

"$BIN" fetch --port "$port" --path /shutdown --post
trap - EXIT
wait "$pid"
grep -q 'drained, exiting' "$DIR/serve.log"

# The attached cache dir must have persisted the sweep's results.
ls "$DIR/serve_cache"/seg-*.c2b > /dev/null

echo "serve smoke OK"
