// Fuzz suite for the binary trace format (v2, checksummed): random traces
// must survive write -> read bit-identically, and EVERY truncation and
// EVERY single-bit flip of a serialized trace must throw a clean
// std::runtime_error naming the failing byte offset — never crash, hang,
// or silently parse.

#include "c2b/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "c2b/check/generators.h"
#include "c2b/check/property.h"

namespace c2b {
namespace {

using check::gen_trace;
using check::print_trace;
using check::shrink_trace;

bool traces_identical(const Trace& a, const Trace& b) {
  if (a.name != b.name || a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].kind != b.records[i].kind ||
        a.records[i].address != b.records[i].address ||
        a.records[i].depends_on_prev_mem != b.records[i].depends_on_prev_mem)
      return false;
  }
  return true;
}

std::string serialize(const Trace& trace) {
  std::stringstream buffer;
  write_trace(buffer, trace);
  return buffer.str();
}

TEST(TraceIoFuzz, RandomTracesRoundTripBitIdentically) {
  check::Property<Trace> p;
  p.name = "trace_round_trip";
  p.generate = [](Rng& rng) { return gen_trace(rng, 256); };
  p.holds = [](const Trace& trace) -> std::optional<std::string> {
    std::stringstream buffer(serialize(trace));
    const Trace loaded = read_trace(buffer);
    if (!traces_identical(trace, loaded)) return "round trip changed the trace";
    return std::nullopt;
  };
  p.shrink = shrink_trace;
  p.print = print_trace;

  check::CheckOptions options;
  options.seed = 42;
  options.cases = 150;
  const check::CheckResult result = check::check(p, check::options_from_env(options));
  EXPECT_TRUE(result.passed) << result.summary();
}

TEST(TraceIoFuzz, EveryTruncationThrowsWithByteOffset) {
  Rng rng(7);
  Trace trace = gen_trace(rng, 12);
  trace.name = "fuzz/truncate";
  const std::string bytes = serialize(trace);
  ASSERT_GT(bytes.size(), 16u);

  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::stringstream truncated(bytes.substr(0, keep));
    try {
      (void)read_trace(truncated);
      FAIL() << "prefix of " << keep << "/" << bytes.size() << " bytes parsed silently";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos)
          << "error lacks the failing offset: " << error.what();
    }
  }
}

TEST(TraceIoFuzz, EverySingleBitFlipThrows) {
  Rng rng(8);
  Trace trace = gen_trace(rng, 6);
  trace.name = "fz";
  const std::string bytes = serialize(trace);

  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::stringstream corrupted(flipped);
      try {
        (void)read_trace(corrupted);
        FAIL() << "bit " << bit << " of byte " << byte << " flipped silently ("
               << bytes.size() << "-byte file)";
      } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos)
            << "error lacks the failing offset: " << error.what();
      }
    }
  }
}

TEST(TraceIoFuzz, RandomGarbageNeverParses) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    Rng rng(Rng::derive_stream_seed(9, i));
    std::string garbage(static_cast<std::size_t>(rng.uniform_below(256)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_below(256));
    // Keep a valid magic on some inputs so deeper decoding paths run too.
    if (i % 3 == 0 && garbage.size() >= 4) {
      garbage[0] = 'C'; garbage[1] = '2'; garbage[2] = 'B'; garbage[3] = 'T';
    }
    std::stringstream in(garbage);
    EXPECT_THROW((void)read_trace(in), std::runtime_error) << "case " << i;
  }
}

TEST(TraceIoFuzz, ChecksumCatchesPayloadOnlyCorruption) {
  // A flipped address byte decodes as a perfectly plausible record — only
  // the trailer checksum can catch it. Flip one and expect the checksum
  // error specifically.
  Trace trace;
  trace.records.push_back({.kind = InstrKind::kLoad, .address = 0x1234});
  std::string bytes = serialize(trace);
  // Record layout after the 20-byte header (empty name): kind, flags, address[8].
  const std::size_t address_byte = 20 + 2 + 3;
  ASSERT_LT(address_byte, bytes.size() - 8);
  bytes[address_byte] = static_cast<char>(bytes[address_byte] ^ 0x10);
  std::stringstream corrupted(bytes);
  try {
    (void)read_trace(corrupted);
    FAIL() << "payload corruption parsed silently";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum mismatch"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace c2b
