#include "c2b/core/asymmetric.h"

#include <gtest/gtest.h>

#include "c2b/core/optimizer.h"

namespace c2b {
namespace {

AppProfile app_profile(double f_seq, ScalingFunction g = ScalingFunction::linear()) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = f_seq;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = std::move(g);
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile machine_profile() {
  MachineProfile machine;
  machine.chip.total_area = 128.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;
  return machine;
}

TEST(Asymmetric, AreaAccountingClosesTheBudget) {
  const AsymmetricC2BoundModel model(app_profile(0.2), machine_profile());
  const AsymmetricDesign d{.n_small = 7, .big_core_ratio = 5.0, .l1_fraction = 0.2,
                           .l2_fraction = 0.3};
  const AsymmetricEvaluation e = model.evaluate(d);
  const double used = e.big.per_core_area() + 7.0 * e.small.per_core_area() +
                      machine_profile().chip.shared_area;
  EXPECT_NEAR(used, machine_profile().chip.total_area, 1e-9);
  EXPECT_NEAR(e.big.per_core_area(), 5.0 * e.small.per_core_area(), 1e-9);
}

TEST(Asymmetric, BigCoreIsFasterSerially) {
  const AsymmetricC2BoundModel model(app_profile(0.2), machine_profile());
  const AsymmetricEvaluation e = model.evaluate(
      {.n_small = 7, .big_core_ratio = 6.0, .l1_fraction = 0.2, .l2_fraction = 0.3});
  EXPECT_LT(e.cpi_big, e.cpi_small);
  EXPECT_LE(e.camat_big, e.camat_small + 1e-9);
}

TEST(Asymmetric, TimeDecomposes) {
  const AsymmetricC2BoundModel model(app_profile(0.3), machine_profile());
  const AsymmetricEvaluation e = model.evaluate(
      {.n_small = 4, .big_core_ratio = 4.0, .l1_fraction = 0.2, .l2_fraction = 0.3});
  EXPECT_NEAR(e.execution_time, e.serial_time + e.parallel_time, 1e-9);
  EXPECT_GT(e.serial_time, 0.0);
  EXPECT_GT(e.parallel_time, 0.0);
  EXPECT_NEAR(e.throughput, e.problem_size / e.execution_time, 1e-9);
}

TEST(Asymmetric, InvalidDesignsThrow) {
  const AsymmetricC2BoundModel model(app_profile(0.2), machine_profile());
  EXPECT_THROW((void)model.evaluate({.n_small = 0}), std::invalid_argument);
  EXPECT_THROW((void)model.evaluate({.n_small = 2, .big_core_ratio = 0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)model.evaluate({.n_small = 2, .big_core_ratio = 2.0,
                                     .l1_fraction = 0.6, .l2_fraction = 0.5}),
               std::invalid_argument);
}

TEST(Asymmetric, OptimizerRespectsBounds) {
  OptimizerOptions options;
  options.n_max = 16;
  options.nelder_mead_restarts = 2;
  const AsymmetricOptimizer opt(
      AsymmetricC2BoundModel(app_profile(0.25), machine_profile()), options);
  const AsymmetricEvaluation e = opt.best_allocation(8);
  EXPECT_GE(e.design.big_core_ratio, 1.0);
  EXPECT_GT(e.design.l1_fraction, 0.0);
  EXPECT_GT(e.design.l2_fraction, 0.0);
  EXPECT_GT(e.design.core_fraction(), 0.0);
}

TEST(Asymmetric, HighFseqFavorsBiggerBigCore) {
  OptimizerOptions options;
  options.n_max = 12;
  options.nelder_mead_restarts = 2;
  const AsymmetricOptimizer serial_heavy(
      AsymmetricC2BoundModel(app_profile(0.4, ScalingFunction::fixed()), machine_profile()),
      options);
  const AsymmetricOptimizer parallel_heavy(
      AsymmetricC2BoundModel(app_profile(0.02, ScalingFunction::fixed()), machine_profile()),
      options);
  const AsymmetricEvaluation serial_best = serial_heavy.best_allocation(8);
  const AsymmetricEvaluation parallel_best = parallel_heavy.best_allocation(8);
  EXPECT_GT(serial_best.design.big_core_ratio, parallel_best.design.big_core_ratio * 0.9);
}

TEST(Asymmetric, BeatsSymmetricWhenSequentialPartIsLarge) {
  // The Hill-Marty insight: with a hefty sequential fraction, an asymmetric
  // chip (big core for the serial phase) outruns the best symmetric chip.
  AppProfile app = app_profile(0.35, ScalingFunction::fixed());
  const MachineProfile machine = machine_profile();

  OptimizerOptions options;
  options.n_max = 24;
  options.nelder_mead_restarts = 2;
  const OptimalDesign symmetric =
      C2BoundOptimizer(C2BoundModel(app, machine), options).optimize();
  const AsymmetricOptimum asymmetric =
      AsymmetricOptimizer(AsymmetricC2BoundModel(app, machine), options).optimize();
  EXPECT_LT(asymmetric.best.execution_time, symmetric.best.execution_time);
}

TEST(Asymmetric, OptimizeProducesFrontier) {
  OptimizerOptions options;
  options.n_max = 10;
  options.nelder_mead_restarts = 1;
  const AsymmetricOptimizer opt(
      AsymmetricC2BoundModel(app_profile(0.1), machine_profile()), options);
  const AsymmetricOptimum result = opt.optimize();
  EXPECT_EQ(result.per_small_count.size(), 10u);
  EXPECT_GE(result.best.design.n_small, 1);
}

}  // namespace
}  // namespace c2b
