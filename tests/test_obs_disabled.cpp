// Compiled with -DC2B_OBS_DISABLED (see tests/CMakeLists.txt): every
// instrumentation macro must vanish — no registry slots created, no trace
// events recorded, no reference to the runtime switch.

#include <gtest/gtest.h>

#include "c2b/obs/export.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"
#include "c2b/obs/progress.h"

#ifndef C2B_OBS_DISABLED
#error "this test must be built with C2B_OBS_DISABLED"
#endif

namespace c2b::obs {
namespace {

TEST(ObsDisabled, MacrosAreNoOps) {
  clear_trace_events();
  Registry registry;  // private registry: the macros must never touch it

  C2B_COUNTER_INC("disabled.counter");
  C2B_COUNTER_ADD("disabled.counter", 10);
  C2B_GAUGE_SET("disabled.gauge", 3.5);
  C2B_HISTOGRAM_RECORD("disabled.histogram", 0.0, 1.0, 4, 0.5);
  {
    C2B_SPAN("disabled/span");
    C2B_SPAN_ARG("disabled/span_arg", 7u);
  }

  EXPECT_TRUE(registry.snapshot().empty());
  EXPECT_TRUE(collect_trace_events().empty());
}

TEST(ObsDisabled, GlobalRegistryStaysEmpty) {
  C2B_COUNTER_INC("disabled.global");
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

TEST(ObsDisabled, ActiveIsConstantFalse) {
  set_enabled(true);
  EXPECT_FALSE(C2B_OBS_ACTIVE());
}

TEST(ObsDisabled, JournalAndProgressAccessorsFoldToNull) {
  // Disabled TUs see internal-linkage constant-null accessors, so every
  // `if (auto* j = active_journal())` emission site is dead code — and the
  // set_* calls cannot reach the library's real globals.
  static_assert(active_journal() == nullptr);
  static_assert(active_progress() == nullptr);
  set_active_journal(nullptr);
  set_active_progress(nullptr);
  EXPECT_EQ(active_journal(), nullptr);
  EXPECT_EQ(active_progress(), nullptr);
}

TEST(ObsDisabled, DirectApiStillWorks) {
  // Only the macros are compiled out; the library API itself stays usable
  // (e.g. for tools that always want metrics regardless of build flags).
  Registry registry;
  registry.counter("direct").add(2);
  EXPECT_EQ(registry.snapshot().size(), 1u);
  EXPECT_NE(metrics_json(registry).find("\"direct\":2"), std::string::npos);
}

}  // namespace
}  // namespace c2b::obs
