#include "c2b/aps/aps.h"

#include <gtest/gtest.h>

#include "c2b/aps/characterize.h"
#include "c2b/aps/dse.h"

namespace c2b {
namespace {

sim::SystemConfig baseline_system() {
  sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

// ---------------------------------------------------------------------------
// Characterization

TEST(Characterize, ProducesSaneProfile) {
  WorkloadSpec spec = make_fluidanimate_like_workload(1 << 14);
  CharacterizeOptions options;
  options.instructions = 120000;
  const Characterization c = characterize(spec, baseline_system(), options);

  EXPECT_GT(c.app.f_mem, 0.2);
  EXPECT_LT(c.app.f_mem, 0.8);
  EXPECT_GE(c.app.hit_concurrency, 1.0);
  EXPECT_GE(c.app.miss_concurrency, 1.0);
  EXPECT_GE(c.app.overlap_ratio, 0.0);
  EXPECT_LE(c.app.overlap_ratio, 1.0);
  EXPECT_GT(c.app.working_set_lines0, 100.0);
  EXPECT_GT(c.cpi_exe, 0.0);
  EXPECT_GE(c.measured_cpi, c.cpi_exe);  // memory can only slow things down
  EXPECT_EQ(c.simulation_runs, 2u);
  EXPECT_GT(c.l1_power_law.beta, 0.0);
}

TEST(Characterize, SimPointsReduceSimulatedInstructions) {
  WorkloadSpec spec = make_fluidanimate_like_workload(1 << 14);
  CharacterizeOptions full;
  full.instructions = 200000;
  CharacterizeOptions sampled = full;
  sampled.use_simpoints = true;
  sampled.simpoint.interval_length = 25000;
  sampled.simpoint.max_clusters = 3;

  const Characterization c_full = characterize(spec, baseline_system(), full);
  const Characterization c_sampled = characterize(spec, baseline_system(), sampled);
  EXPECT_LT(c_sampled.simulated_instructions, c_full.simulated_instructions);
  // The sampled estimate should be in the ballpark of the full one.
  EXPECT_NEAR(c_sampled.app.f_mem, c_full.app.f_mem, 0.15);
  EXPECT_NEAR(c_sampled.measured_cpi / c_full.measured_cpi, 1.0, 0.5);
}

TEST(Characterize, PointerChaseShowsLowConcurrency) {
  const Characterization chase =
      characterize(make_pointer_chase_workload(1 << 12), baseline_system(),
                   {.instructions = 60000});
  const Characterization stream =
      characterize(make_fluidanimate_like_workload(1 << 14), baseline_system(),
                   {.instructions = 60000});
  EXPECT_LT(chase.camat.concurrency_c, stream.camat.concurrency_c);
}

// ---------------------------------------------------------------------------
// Design space mapping

DseAxes tiny_axes() {
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  return axes;
}

DseContext tiny_context() {
  DseContext context;
  context.base = baseline_system();
  context.workload = make_stencil_workload(96);
  context.instructions0 = 20000;
  context.per_core_cap = 10000;
  context.chip.total_area = 9.0;  // at N=2 only lean combos fit (Eq. 12)
  context.chip.shared_area = 1.0;
  return context;
}

TEST(Dse, ConfigMappingHonorsAxes) {
  const DseContext context = tiny_context();
  const sim::SystemConfig config =
      config_for_design(context, {4.0, 1.0, 2.0, 2.0, 4.0, 64.0});
  EXPECT_EQ(config.hierarchy.cores, 2u);
  EXPECT_EQ(config.core.issue_width, 4u);
  EXPECT_EQ(config.core.rob_size, 64u);
  EXPECT_EQ(config.core.functional_units, 4u);  // 2*sqrt(4)
  // a1 = 1.0 area * 16 KiB = 16 KiB L1.
  EXPECT_EQ(config.hierarchy.l1_geometry.size_bytes, 16u * 1024u);
  // a2 = 2.0 area * 48 KiB * 2 cores = 192 KiB -> rounds to 256 KiB.
  EXPECT_EQ(config.hierarchy.l2_geometry.size_bytes, 256u * 1024u);
}

TEST(Dse, CacheCapacityRoundsUpNotToNearest) {
  const DseContext context = tiny_context();
  // a1 = 1.1 area * 16 KiB = 17.6 KiB: nearest power of two is 16 KiB,
  // which would build less cache than the area budget pays for. The mapper
  // must round up to 32 KiB instead.
  const sim::SystemConfig config =
      config_for_design(context, {1.0, 1.1, 1.4, 1.0, 2.0, 32.0});
  EXPECT_EQ(config.hierarchy.l1_geometry.size_bytes, 32u * 1024u);
  // a2 = 1.4 area * 48 KiB * 1 core = 67.2 KiB: nearest rounding gave
  // 64 KiB (below budget); ceiling gives 128 KiB.
  EXPECT_EQ(config.hierarchy.l2_geometry.size_bytes, 128u * 1024u);
}

TEST(Dse, ExactPowerOfTwoCapacityIsPreserved) {
  const DseContext context = tiny_context();
  // a1 = 1.0 * 16 KiB and a2 = 2.0 * 48 KiB * 2 = 192 KiB -> 256 KiB; the
  // exact-power case must not be bumped one level up by the ceiling.
  const sim::SystemConfig config =
      config_for_design(context, {4.0, 1.0, 2.0, 2.0, 4.0, 64.0});
  EXPECT_EQ(config.hierarchy.l1_geometry.size_bytes, 16u * 1024u);
  EXPECT_EQ(config.hierarchy.l2_geometry.size_bytes, 256u * 1024u);
}

TEST(Dse, CacheSizesNeverBelowMinimumGeometry) {
  const DseContext context = tiny_context();
  const sim::SystemConfig config =
      config_for_design(context, {0.5, 0.001, 0.001, 1.0, 2.0, 32.0});
  config.hierarchy.l1_geometry.validate();
  config.hierarchy.l2_geometry.validate();
}

TEST(Dse, SimulatedTimeIsPositiveAndDeterministic) {
  const DseContext context = tiny_context();
  const std::vector<double> point{1.0, 0.5, 1.0, 2.0, 2.0, 32.0};
  const double t1 = simulate_design_time(context, point);
  const double t2 = simulate_design_time(context, point);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Dse, BetterHardwareIsNotSlower) {
  const DseContext context = tiny_context();
  const double weak = simulate_design_time(context, {1.0, 0.5, 1.0, 1.0, 2.0, 32.0});
  const double strong = simulate_design_time(context, {4.0, 1.0, 2.0, 1.0, 4.0, 64.0});
  EXPECT_LT(strong, weak * 1.05);
}

// ---------------------------------------------------------------------------
// Full DSE + APS + ANN comparison on a tiny space

TEST(ApsIntegration, NarrowsSpaceAndStaysNearOptimum) {
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());
  ASSERT_EQ(space.size(), 64u);

  const FullDseResult truth = run_full_dse(context, space);
  // The Eq. (12) filter must bite: some grid combos exceed the chip area.
  EXPECT_LT(truth.feasible_count, 64u);
  EXPECT_GT(truth.feasible_count, 8u);
  EXPECT_EQ(truth.simulations, truth.feasible_count);
  EXPECT_GT(truth.best_time, 0.0);
  EXPECT_TRUE(std::isfinite(truth.best_time));

  ApsOptions options;
  options.characterize.instructions = 60000;
  const ApsResult aps = run_aps(context, space, options);
  EXPECT_LT(aps.simulations, truth.simulations);
  EXPECT_GE(aps.narrowing_factor, 3.9);
  // APS only proposes buildable chips.
  for (const std::size_t flat : aps.simulated_indices)
    EXPECT_TRUE(design_feasible(context, space.point(flat)));

  // APS's choice should be competitive: within 60% of the true optimum on
  // this deliberately coarse grid (the paper reports ~6% on its own space;
  // the tolerance here mostly guards against gross mis-navigation).
  const double regret = design_regret(truth, aps.best_index);
  EXPECT_LT(regret, 0.6);
  EXPECT_GE(regret, 0.0);
}

TEST(ApsIntegration, AnnReachesTargetWithMoreSimulations) {
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());
  const FullDseResult truth = run_full_dse(context, space);

  AnnDseOptions options;
  options.initial_samples = 8;
  options.batch_size = 8;
  options.epochs_per_round = 150;
  const AnnDseResult ann = run_ann_dse(space, truth, 0.25, options);
  EXPECT_GT(ann.simulations, 0u);
  EXPECT_LE(ann.simulations, space.size());
  if (ann.reached_target) {
    EXPECT_LE(design_regret(truth, ann.best_index), 0.25);
  }
  EXPECT_GT(ann.mean_relative_error, 0.0);
}

TEST(ApsIntegration, RegretHelperValidates) {
  FullDseResult truth;
  truth.times = {10.0, 12.0, 15.0};
  truth.best_index = 0;
  truth.best_time = 10.0;
  EXPECT_DOUBLE_EQ(design_regret(truth, 0), 0.0);
  EXPECT_DOUBLE_EQ(design_regret(truth, 2), 0.5);
  EXPECT_THROW((void)design_regret(truth, 5), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
