// Property-based vectorized-kernel equivalence (ctest label: check). The
// vectorized lockstep batch kernel (batched_simd.cpp) and the scalar
// lockstep driver must be bitwise indistinguishable on random scenarios —
// random member configs, batch widths, lockstep granularities, workloads —
// and both must keep the telemetry ledger balanced:
// sim.l1.hit + sim.l1.miss + exec.simcache.replayed_accesses == the demand
// accesses the results report. Complements the `simd` oracle family (which
// also compares against simulate_system_reference); this suite drives the
// PBT engine so failures shrink and replay from a one-line repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "c2b/check/generators.h"
#include "c2b/check/property.h"
#include "c2b/common/rng.h"
#include "c2b/obs/obs.h"
#include "c2b/obs/registry.h"
#include "c2b/sim/system/batched.h"
#include "c2b/trace/chunk_store.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

/// One random batch-replay scenario. Everything downstream (streams, member
/// configs, both replays) is a pure function of this value, so the PBT
/// engine's (seed, case) repro and shrinking both work.
struct SimdScenario {
  WorkloadSpec spec;
  double scale = 1.0;
  std::uint64_t stream_seed = 0;
  std::uint64_t window = 2000;           ///< records per core stream
  std::uint32_t cores = 1;               ///< cores per member
  std::size_t width = 2;                 ///< batch members (>= 2 -> vectorized)
  std::uint64_t lockstep_records = 4096; ///< lockstep granularity
  std::vector<sim::SystemConfig> configs;  ///< one per member (heterogeneous)
};

SimdScenario gen_simd_scenario(Rng& rng) {
  SimdScenario s;
  const sim::SystemConfig proto = check::gen_system_config(rng);
  s.spec = check::gen_workload_spec(rng);
  s.scale = rng.uniform_below(2) == 0 ? 1.0 : 2.0;
  s.stream_seed = rng.next();
  s.window = 1000 + rng.uniform_below(4000);
  s.cores = proto.hierarchy.cores;  // members share the proto's core count
  s.width = 2 + static_cast<std::size_t>(rng.uniform_below(15));  // 2..16
  const std::uint64_t granularities[] = {1, 7, 64, 4096};
  s.lockstep_records = granularities[rng.uniform_below(4)];
  s.configs.reserve(s.width);
  for (std::size_t m = 0; m < s.width; ++m) {
    sim::SystemConfig config = proto;
    const std::uint32_t issues[] = {1, 2, 4};
    config.core.issue_width = issues[rng.uniform_below(3)];
    const std::uint32_t robs[] = {16, 32, 64, 128};
    config.core.rob_size = std::max(config.core.issue_width, robs[rng.uniform_below(4)]);
    const std::uint32_t fus[] = {1, 2, 4, 8};
    config.core.functional_units = fus[rng.uniform_below(4)];
    const std::uint64_t line = config.hierarchy.l1_geometry.line_bytes;
    const std::uint64_t assoc = config.hierarchy.l1_geometry.associativity;
    const std::uint64_t l1_sets[] = {4, 16, 64};
    config.hierarchy.l1_geometry.size_bytes = line * assoc * l1_sets[rng.uniform_below(3)];
    config.validate();
    s.configs.push_back(config);
  }
  return s;
}

std::string print_simd_scenario(const SimdScenario& s) {
  std::ostringstream os;
  os << "workload=" << s.spec.name << " scale=" << s.scale << " stream_seed=" << s.stream_seed
     << " window=" << s.window << " cores=" << s.cores << " width=" << s.width
     << " lockstep=" << s.lockstep_records;
  return os.str();
}

/// Width/window/granularity shrinks (member configs shrink with width: the
/// prefix of the config list is kept, so smaller scenarios stay coherent).
std::vector<SimdScenario> shrink_simd_scenario(const SimdScenario& s) {
  std::vector<SimdScenario> out;
  if (s.width > 2) {
    SimdScenario half = s;
    half.width = std::max<std::size_t>(2, s.width / 2);
    half.configs.resize(half.width);
    out.push_back(std::move(half));
    SimdScenario minus = s;
    minus.width = s.width - 1;
    minus.configs.resize(minus.width);
    out.push_back(std::move(minus));
  }
  if (s.window > 1000) {
    SimdScenario small = s;
    small.window = std::max<std::uint64_t>(1000, s.window / 2);
    out.push_back(std::move(small));
  }
  if (s.cores > 1) {
    SimdScenario narrow = s;
    narrow.cores = 1;
    for (sim::SystemConfig& config : narrow.configs) config.hierarchy.cores = 1;
    out.push_back(std::move(narrow));
  }
  if (s.lockstep_records > 1) {
    SimdScenario fine = s;
    fine.lockstep_records = 1;
    out.push_back(std::move(fine));
  }
  return out;
}

struct BatchRun {
  std::vector<sim::SystemResult> results;
  sim::BatchKernelStats kernel;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t replayed = 0;
  bool ledger_live = false;  ///< telemetry was active, ledger fields valid
};

/// One full batched replay over a fresh shared chunk store: per-core
/// streams generated from the scenario's workload, width x cores
/// ChunkCursors, lockstep at the scenario's granularity.
BatchRun run_batch(const SimdScenario& s, const bool use_simd) {
  BatchRun run;
  TraceChunkStore store;
  std::vector<std::size_t> stream_ids;
  stream_ids.reserve(s.cores);
  for (std::uint32_t c = 0; c < s.cores; ++c) {
    stream_ids.push_back(store.add_stream(
        s.spec.make_generator(s.scale, Rng::derive_stream_seed(s.stream_seed, c)), s.window));
  }
  store.set_readers(static_cast<std::uint32_t>(s.width));

  std::vector<ChunkCursor> cursors;
  cursors.reserve(s.width * s.cores);
  std::vector<std::vector<TraceCursor*>> member_cursors(s.width);
  for (std::size_t m = 0; m < s.width; ++m) {
    for (std::uint32_t c = 0; c < s.cores; ++c) {
      cursors.emplace_back(store, stream_ids[c]);
      member_cursors[m].push_back(&cursors.back());
    }
  }

  sim::BatchedReplayOptions options;
  options.lockstep_records = s.lockstep_records;
  options.use_simd = use_simd;
  options.kernel_stats = &run.kernel;

  run.ledger_live = C2B_OBS_ACTIVE();
  if (run.ledger_live) obs::Registry::global().reset_values();
  run.results = sim::simulate_system_batched(s.configs, member_cursors, options);
  if (run.ledger_live) {
    obs::Registry& registry = obs::Registry::global();
    run.l1_hits = registry.counter("sim.l1.hit").value();
    run.l1_misses = registry.counter("sim.l1.miss").value();
    run.replayed = registry.counter("exec.simcache.replayed_accesses").value();
  }
  return run;
}

std::uint64_t reported_accesses(const std::vector<sim::SystemResult>& results) {
  std::uint64_t total = 0;
  for (const sim::SystemResult& result : results)
    for (const sim::CoreResult& core : result.cores) total += core.memory_accesses;
  return total;
}

/// First field-level difference between two member results (bit patterns
/// for doubles — the contract is bit-identity, not closeness).
std::optional<std::string> diff_member(const sim::SystemResult& a, const sim::SystemResult& b) {
  auto u64 = [](const char* label, std::uint64_t x, std::uint64_t y,
                std::optional<std::string>& diff) {
    if (!diff && x != y) {
      std::ostringstream os;
      os << label << ": " << x << " != " << y;
      diff = os.str();
    }
  };
  auto f64 = [&u64](const char* label, double x, double y, std::optional<std::string>& diff) {
    u64(label, std::bit_cast<std::uint64_t>(x), std::bit_cast<std::uint64_t>(y), diff);
  };
  std::optional<std::string> diff;
  u64("cycles", a.cycles, b.cycles, diff);
  u64("cores.size", a.cores.size(), b.cores.size(), diff);
  if (diff) return diff;
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    const sim::CoreResult& x = a.cores[c];
    const sim::CoreResult& y = b.cores[c];
    u64("core.instructions", x.instructions, y.instructions, diff);
    u64("core.memory_accesses", x.memory_accesses, y.memory_accesses, diff);
    u64("core.cycles", x.cycles, y.cycles, diff);
    f64("core.cpi", x.cpi, y.cpi, diff);
    f64("core.f_mem", x.f_mem, y.f_mem, diff);
    u64("camat.accesses", x.camat.accesses, y.camat.accesses, diff);
    u64("camat.misses", x.camat.misses, y.camat.misses, diff);
    u64("camat.pure_misses", x.camat.pure_misses, y.camat.pure_misses, diff);
    u64("camat.memory_active_cycles", x.camat.memory_active_cycles,
        y.camat.memory_active_cycles, diff);
    f64("camat.amat_value", x.camat.amat_value, y.camat.amat_value, diff);
    f64("camat.camat_value", x.camat.camat_value, y.camat.camat_value, diff);
    if (diff) {
      *diff = "core " + std::to_string(c) + " " + *diff;
      return diff;
    }
  }
  u64("hierarchy.l1_accesses", a.hierarchy.l1_accesses, b.hierarchy.l1_accesses, diff);
  u64("hierarchy.l2_accesses", a.hierarchy.l2_accesses, b.hierarchy.l2_accesses, diff);
  u64("hierarchy.dram_accesses", a.hierarchy.dram_accesses, b.hierarchy.dram_accesses, diff);
  u64("hierarchy.l1_writebacks", a.hierarchy.l1_writebacks, b.hierarchy.l1_writebacks, diff);
  f64("hierarchy.l1_miss_ratio", a.hierarchy.l1_miss_ratio, b.hierarchy.l1_miss_ratio, diff);
  f64("hierarchy.dram_average_latency", a.hierarchy.dram_average_latency,
      b.hierarchy.dram_average_latency, diff);
  return diff;
}

std::optional<std::string> check_ledger(const char* which, const BatchRun& run) {
  if (!run.ledger_live) return std::nullopt;
  const std::uint64_t reported = reported_accesses(run.results);
  if (run.l1_hits + run.l1_misses + run.replayed == reported) return std::nullopt;
  std::ostringstream os;
  os << which << " ledger: sim.l1.hit " << run.l1_hits << " + sim.l1.miss " << run.l1_misses
     << " + replayed " << run.replayed << " != reported accesses " << reported;
  return os.str();
}

TEST(SimdEquivalenceProperty, VectorizedMatchesScalarLockstepBitwise) {
  check::Property<SimdScenario> property;
  property.name = "simd_vs_scalar_lockstep";
  property.generate = gen_simd_scenario;
  property.print = print_simd_scenario;
  property.shrink = shrink_simd_scenario;
  property.holds = [](const SimdScenario& s) -> std::optional<std::string> {
    const BatchRun vectorized = run_batch(s, /*use_simd=*/true);
    const BatchRun scalar = run_batch(s, /*use_simd=*/false);
    if (vectorized.results.size() != scalar.results.size())
      return std::string("result count mismatch");
    for (std::size_t m = 0; m < vectorized.results.size(); ++m) {
      if (auto diff = diff_member(vectorized.results[m], scalar.results[m]))
        return "member " + std::to_string(m) + ": " + *diff;
    }
    // The scalar driver must not report vectorized-kernel activity, and
    // both runs must leave the telemetry ledger balanced and identical.
    if (scalar.kernel.simd_steps != 0 || scalar.kernel.simd_peels != 0)
      return std::string("scalar run reported simd kernel stats");
    if (auto failure = check_ledger("vectorized", vectorized)) return failure;
    if (auto failure = check_ledger("scalar", scalar)) return failure;
    if (vectorized.ledger_live && scalar.ledger_live &&
        (vectorized.l1_hits != scalar.l1_hits || vectorized.l1_misses != scalar.l1_misses)) {
      std::ostringstream os;
      os << "ledger divergence: vectorized hit/miss " << vectorized.l1_hits << "/"
         << vectorized.l1_misses << " vs scalar " << scalar.l1_hits << "/" << scalar.l1_misses;
      return os.str();
    }
    return std::nullopt;
  };

  check::CheckOptions options;
  options.cases = 40;
  const check::CheckResult result = check::check(property, check::options_from_env(options));
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_GT(result.cases_run, 0u);
}

}  // namespace
}  // namespace c2b
