// Tier-1 determinism contract for the parallel execution layer: running the
// APS pipeline and the full-factorial DSE sweep at any thread count must
// produce bit-identical results to the serial run. See DESIGN.md
// ("Parallel execution") for why this holds by construction.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/check/generators.h"
#include "c2b/core/optimizer.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"

namespace c2b {
namespace {

sim::SystemConfig baseline_system() {
  sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

DseAxes tiny_axes() {
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  return axes;
}

DseContext tiny_context() {
  DseContext context;
  context.base = baseline_system();
  context.workload = make_stencil_workload(96);
  context.instructions0 = 20000;
  context.per_core_cap = 10000;
  context.chip.total_area = 9.0;
  context.chip.shared_area = 1.0;
  return context;
}

/// Restores the global thread count and re-enables/clears the global sim
/// cache when a test exits, so ordering between tests never matters.
class ExecEnvGuard {
 public:
  ExecEnvGuard() = default;
  ~ExecEnvGuard() {
    exec::set_thread_count(0);
    exec::SimCache::global().set_enabled(true);
    exec::SimCache::global().clear();
  }
};

const std::vector<std::size_t> kThreadCounts{1, 2, 8};

TEST(ParallelDeterminism, FullDseIsBitIdenticalAcrossThreadCounts) {
  ExecEnvGuard guard;
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());

  // Memoization off: every run must recompute everything from scratch so
  // the comparison exercises the parallel sweep itself, not the cache.
  exec::SimCache::global().set_enabled(false);
  exec::SimCache::global().clear();

  std::vector<FullDseResult> results;
  for (const std::size_t threads : kThreadCounts) {
    exec::set_thread_count(threads);
    results.push_back(run_full_dse(context, space));
  }
  const FullDseResult& serial = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[i]));
    EXPECT_EQ(results[i].best_index, serial.best_index);
    EXPECT_EQ(results[i].best_time, serial.best_time);  // bit-identical
    EXPECT_EQ(results[i].simulations, serial.simulations);
    EXPECT_EQ(results[i].feasible_count, serial.feasible_count);
    ASSERT_EQ(results[i].times.size(), serial.times.size());
    for (std::size_t j = 0; j < serial.times.size(); ++j)
      EXPECT_EQ(results[i].times[j], serial.times[j]) << "flat index " << j;
  }
}

TEST(ParallelDeterminism, ApsIsBitIdenticalAcrossThreadCounts) {
  ExecEnvGuard guard;
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());
  ApsOptions options;
  options.characterize.instructions = 60000;

  exec::SimCache::global().set_enabled(false);
  exec::SimCache::global().clear();

  std::vector<ApsResult> results;
  for (const std::size_t threads : kThreadCounts) {
    exec::set_thread_count(threads);
    results.push_back(run_aps(context, space, options));
  }
  const ApsResult& serial = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[i]));
    EXPECT_EQ(results[i].best_index, serial.best_index);
    EXPECT_EQ(results[i].best_time, serial.best_time);  // bit-identical
    EXPECT_EQ(results[i].simulations, serial.simulations);
    EXPECT_EQ(results[i].memory_accesses, serial.memory_accesses);
    EXPECT_EQ(results[i].snapped_index, serial.snapped_index);
    EXPECT_EQ(results[i].simulated_indices, serial.simulated_indices);
  }
}

TEST(ParallelDeterminism, SimCacheHitsKeepApsResultsIdentical) {
  ExecEnvGuard guard;
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());
  ApsOptions options;
  options.characterize.instructions = 60000;

  exec::set_thread_count(2);
  exec::SimCache::global().set_enabled(true);
  exec::SimCache::global().clear();

  const ApsResult cold = run_aps(context, space, options);
  const exec::SimCacheStats after_cold = exec::SimCache::global().stats();
  EXPECT_GT(after_cold.entries, 0u);

  // Revisiting the same neighborhood must be served from the cache and
  // return the bit-identical outcome the cold run produced.
  const ApsResult warm = run_aps(context, space, options);
  const exec::SimCacheStats after_warm = exec::SimCache::global().stats();
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_EQ(warm.best_index, cold.best_index);
  EXPECT_EQ(warm.best_time, cold.best_time);
  EXPECT_EQ(warm.simulations, cold.simulations);
  EXPECT_EQ(warm.memory_accesses, cold.memory_accesses);
  EXPECT_EQ(warm.simulated_indices, cold.simulated_indices);
}

TEST(ParallelDeterminism, CachedTimesMatchUncachedOnes) {
  ExecEnvGuard guard;
  const DseContext context = tiny_context();
  const GridSpace space = make_design_space(tiny_axes());

  exec::set_thread_count(4);
  exec::SimCache::global().set_enabled(false);
  exec::SimCache::global().clear();
  const FullDseResult uncached = run_full_dse(context, space);

  exec::SimCache::global().set_enabled(true);
  exec::SimCache::global().clear();
  const FullDseResult cold = run_full_dse(context, space);
  const FullDseResult warm = run_full_dse(context, space);
  EXPECT_GT(exec::SimCache::global().stats().hits, 0u);

  ASSERT_EQ(cold.times.size(), uncached.times.size());
  for (std::size_t j = 0; j < uncached.times.size(); ++j) {
    EXPECT_EQ(cold.times[j], uncached.times[j]) << "flat index " << j;
    EXPECT_EQ(warm.times[j], uncached.times[j]) << "flat index " << j;
  }
  EXPECT_EQ(warm.best_index, uncached.best_index);
  EXPECT_EQ(warm.best_time, uncached.best_time);
}

/// tiny_context with a power ceiling that bisects the tiny grid: demands on
/// the default PowerModel range from ~2.0 (n=1, minimal areas) to ~6.65
/// (n=2, maximal areas), so 4.0 keeps some designs and rejects others.
DseContext constrained_context() {
  DseContext context = tiny_context();
  context.power_budget = 4.0;
  return context;
}

void expect_same_frontier(const ParetoDseResult& got, const ParetoDseResult& want) {
  EXPECT_EQ(got.feasible_count, want.feasible_count);
  EXPECT_EQ(got.grid_points, want.grid_points);
  ASSERT_EQ(got.frontier.size(), want.frontier.size());
  for (std::size_t p = 0; p < want.frontier.size(); ++p) {
    EXPECT_EQ(got.frontier[p].flat_index, want.frontier[p].flat_index) << "frontier " << p;
    EXPECT_EQ(got.frontier[p].time, want.frontier[p].time) << "frontier " << p;
    EXPECT_EQ(got.frontier[p].power, want.frontier[p].power) << "frontier " << p;
    EXPECT_EQ(got.frontier[p].area, want.frontier[p].area) << "frontier " << p;
  }
  ASSERT_EQ(got.usage.size(), want.usage.size());
  for (std::size_t c = 0; c < want.usage.size(); ++c) {
    EXPECT_EQ(got.usage[c].name, want.usage[c].name);
    EXPECT_EQ(got.usage[c].infeasible, want.usage[c].infeasible);
    EXPECT_EQ(got.usage[c].binding, want.usage[c].binding);
  }
}

TEST(ParallelDeterminism, ParetoFrontierBitIdenticalAcrossThreadCounts) {
  ExecEnvGuard guard;
  const DseContext context = constrained_context();
  const GridSpace space = make_design_space(tiny_axes());

  exec::SimCache::global().set_enabled(false);
  exec::SimCache::global().clear();

  std::vector<ParetoDseResult> results;
  for (const std::size_t threads : kThreadCounts) {
    exec::set_thread_count(threads);
    results.push_back(run_pareto_dse(context, space));
  }
  const ParetoDseResult& serial = results.front();
  // The power ceiling must actually bisect the grid, or the test proves
  // nothing about constrained sweeps.
  const DseContext unconstrained = tiny_context();
  std::size_t area_only_feasible = 0;
  space.for_each([&](std::size_t, const std::vector<double>& point) {
    if (design_feasible(unconstrained, point)) ++area_only_feasible;
  });
  EXPECT_GT(serial.feasible_count, 0u);
  EXPECT_LT(serial.feasible_count, area_only_feasible);
  EXPECT_FALSE(serial.frontier.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[i]));
    expect_same_frontier(results[i], serial);
  }
}

TEST(ParallelDeterminism, ParetoFrontierWarmCacheMatchesCold) {
  ExecEnvGuard guard;
  const DseContext context = constrained_context();
  const GridSpace space = make_design_space(tiny_axes());

  exec::set_thread_count(4);
  exec::SimCache::global().set_enabled(false);
  exec::SimCache::global().clear();
  const ParetoDseResult uncached = run_pareto_dse(context, space);

  exec::SimCache::global().set_enabled(true);
  exec::SimCache::global().clear();
  const ParetoDseResult cold = run_pareto_dse(context, space);
  const ParetoDseResult warm = run_pareto_dse(context, space);
  expect_same_frontier(cold, uncached);
  expect_same_frontier(warm, uncached);
  EXPECT_EQ(warm.batch.cache_hits, warm.feasible_count);
}

TEST(ParallelDeterminism, NelderMeadRestartsBitIdenticalAcrossThreadCounts) {
  // The optimizer's multi-start Nelder-Mead runs its restarts on the
  // thread pool with a serial strict-< reduction in restart order; the
  // winning design must not depend on the thread count — on random models,
  // not just the hand-picked ones.
  ExecEnvGuard guard;
  for (std::uint64_t c = 0; c < 10; ++c) {
    Rng rng(Rng::derive_stream_seed(77, c));
    const AppProfile app = check::gen_app_profile(rng);
    const MachineProfile machine = check::gen_machine_profile(rng);
    OptimizerOptions options;
    options.n_max = 6;
    options.nelder_mead_restarts = 5;
    const C2BoundOptimizer optimizer(C2BoundModel(app, machine), options);

    std::vector<OptimalDesign> results;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      exec::set_thread_count(threads);
      results.push_back(optimizer.optimize());
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].best.execution_time, results[0].best.execution_time)
          << "model " << c;
      EXPECT_EQ(results[i].best.design.a0, results[0].best.design.a0) << "model " << c;
      EXPECT_EQ(results[i].best.design.a1, results[0].best.design.a1) << "model " << c;
      EXPECT_EQ(results[i].best.design.a2, results[0].best.design.a2) << "model " << c;
      EXPECT_EQ(results[i].best.design.n_cores, results[0].best.design.n_cores)
          << "model " << c;
      EXPECT_EQ(results[i].lambda, results[0].lambda) << "model " << c;
    }
  }
}

}  // namespace
}  // namespace c2b
