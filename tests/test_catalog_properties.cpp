// Catalog-wide property sweep: every synthetic workload, pushed through the
// full simulator, must satisfy the structural invariants the C-AMAT theory
// and the machine model promise — this is the reproduction's broadest
// integration net.

#include <gtest/gtest.h>

#include "c2b/sim/system/system.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

sim::SystemConfig reference_system() {
  sim::SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

class CatalogProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  WorkloadSpec spec() const { return workload_catalog()[GetParam()]; }
};

TEST_P(CatalogProperty, SimulatorInvariantsHold) {
  const WorkloadSpec workload = spec();
  const Trace trace = workload.make_generator(1.0, 21)->generate(80'000);
  const sim::SystemResult r = sim::simulate_single_core(reference_system(), trace);
  const TimelineMetrics& m = r.cores[0].camat;

  // Everything retired.
  EXPECT_EQ(r.cores[0].instructions, trace.records.size()) << workload.name;
  // f_mem measured by the core matches the trace's own mix.
  EXPECT_NEAR(r.cores[0].f_mem, trace.f_mem(), 1e-9) << workload.name;
  // The C-AMAT decomposition identity and bounds.
  EXPECT_NEAR(m.camat_value, m.camat_direct, 1e-9) << workload.name;
  EXPECT_GE(m.concurrency_c, 1.0 - 1e-9) << workload.name;
  EXPECT_LE(m.camat_value, m.amat_value + 1e-9) << workload.name;
  EXPECT_GE(m.camat_params.hit_concurrency, 1.0) << workload.name;
  // APC ordering down the hierarchy — meaningful only when the L1 actually
  // filters traffic (an all-miss chase keeps L1 busy for the whole DRAM
  // round trip, legitimately inverting the ratio).
  if (r.hierarchy.dram_accesses > 100 && r.hierarchy.l1_miss_ratio < 0.5) {
    EXPECT_GT(r.hierarchy.apc_l1, r.hierarchy.apc_mem) << workload.name;
  }
  // Miss ratios are probabilities.
  EXPECT_GE(r.hierarchy.l1_miss_ratio, 0.0) << workload.name;
  EXPECT_LE(r.hierarchy.l1_miss_ratio, 1.0) << workload.name;
}

TEST_P(CatalogProperty, PerfectMemoryIsALowerBound) {
  const WorkloadSpec workload = spec();
  const Trace trace = workload.make_generator(1.0, 22)->generate(50'000);
  sim::SystemConfig real = reference_system();
  sim::SystemConfig perfect = reference_system();
  perfect.hierarchy.perfect_memory = true;
  const double cpi_real = sim::simulate_single_core(real, trace).cores[0].cpi;
  const double cpi_perfect = sim::simulate_single_core(perfect, trace).cores[0].cpi;
  EXPECT_LE(cpi_perfect, cpi_real + 1e-9) << workload.name;
}

TEST_P(CatalogProperty, BiggerL1NeverHurtsMissRatio) {
  const WorkloadSpec workload = spec();
  const Trace trace = workload.make_generator(1.0, 23)->generate(50'000);
  sim::SystemConfig small = reference_system();
  small.hierarchy.l1_geometry.size_bytes = 4 * 1024;
  sim::SystemConfig big = reference_system();
  big.hierarchy.l1_geometry.size_bytes = 64 * 1024;
  const double mr_small = sim::simulate_single_core(small, trace).hierarchy.l1_miss_ratio;
  const double mr_big = sim::simulate_single_core(big, trace).hierarchy.l1_miss_ratio;
  // LRU inclusion property (same associativity shape, more sets): allow a
  // hair of slack for set-mapping artifacts.
  EXPECT_LE(mr_big, mr_small + 0.02) << workload.name;
}

TEST_P(CatalogProperty, DeterministicAcrossRuns) {
  const WorkloadSpec workload = spec();
  const Trace trace = workload.make_generator(1.0, 24)->generate(30'000);
  const auto a = sim::simulate_single_core(reference_system(), trace);
  const auto b = sim::simulate_single_core(reference_system(), trace);
  EXPECT_EQ(a.cycles, b.cycles) << workload.name;
  EXPECT_DOUBLE_EQ(a.cores[0].camat.camat_value, b.cores[0].camat.camat_value)
      << workload.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CatalogProperty,
                         ::testing::Range<std::size_t>(0, 10),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return workload_catalog()[info.param].name;
                         });

}  // namespace
}  // namespace c2b
