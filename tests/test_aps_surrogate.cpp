#include "c2b/aps/surrogate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

bool bit_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

/// Multi-class stencil space with a steep time gradient across N: the
/// small-N classes are several times slower than the incumbent, so the
/// pruner has something real to skip, while the grid stays test-sized.
DseContext stratified_context() {
  DseContext context;
  context.base.core.issue_width = 4;
  context.base.core.rob_size = 128;
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.base.hierarchy.coherence = false;
  context.workload = make_stencil_workload(64);
  context.instructions0 = 2'000;
  context.per_core_cap = 1'000;
  context.seed = 77;
  context.chip.shared_area = 2.0;
  context.chip.total_area = 10.0;
  return context;
}

DseAxes stratified_axes() {
  DseAxes axes;
  axes.a0 = {0.25, 0.5, 1.0};
  axes.a1 = {0.125, 0.25};
  axes.a2 = {0.25, 0.5};
  axes.n = {1, 2, 4, 8};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  return axes;
}

/// Restores the process-global knobs each test twiddles.
struct ExecGuard {
  bool cache_was_enabled = exec::SimCache::global().enabled();
  ~ExecGuard() {
    exec::set_thread_count(0);
    exec::SimCache::global().set_enabled(cache_was_enabled);
    exec::SimCache::global().clear();
  }
};

TEST(SurrogateSweep, EmptyPointListIsANoOp) {
  const SurrogateSweepResult result = surrogate_sweep(stratified_context(), {});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_TRUE(result.simulated.empty());
  EXPECT_EQ(result.stats.points_total, 0u);
  EXPECT_EQ(result.stats.classes_total, 0u);
}

TEST(SurrogateSweep, MatchesExhaustiveOptimumAndPrunesClasses) {
  ExecGuard guard;
  exec::SimCache::global().set_enabled(false);
  const DseContext context = stratified_context();
  const GridSpace space = make_design_space(stratified_axes());

  const FullDseResult truth = run_full_dse(context, space);

  DseContext surrogate_context = context;
  surrogate_context.surrogate_enabled = true;
  const FullDseResult pruned = run_full_dse(surrogate_context, space);

  EXPECT_EQ(pruned.best_index, truth.best_index);
  EXPECT_TRUE(bit_equal(pruned.best_time, truth.best_time));
  EXPECT_EQ(pruned.feasible_count, truth.feasible_count);
  // Everything the surrogate simulated is bitwise the exhaustive truth;
  // pruned entries stay +infinity.
  ASSERT_EQ(pruned.times.size(), truth.times.size());
  std::size_t finite = 0;
  for (std::size_t flat = 0; flat < truth.times.size(); ++flat)
    if (std::isfinite(pruned.times[flat])) {
      EXPECT_TRUE(bit_equal(pruned.times[flat], truth.times[flat])) << "flat " << flat;
      ++finite;
    }
  EXPECT_EQ(finite, pruned.surrogate.points_simulated);
  EXPECT_GE(pruned.surrogate.classes_pruned, 1u);
  EXPECT_LT(pruned.simulations, truth.simulations);
}

TEST(SurrogateSweep, StatsAccountingIsConsistent) {
  ExecGuard guard;
  exec::SimCache::global().set_enabled(false);
  DseContext context = stratified_context();
  context.surrogate_enabled = true;
  const GridSpace space = make_design_space(stratified_axes());
  const FullDseResult result = run_full_dse(context, space);
  const SurrogateStats& stats = result.surrogate;

  EXPECT_EQ(stats.classes_simulated + stats.classes_pruned, stats.classes_total);
  EXPECT_EQ(stats.points_total, result.feasible_count);
  EXPECT_LE(stats.points_simulated, stats.points_total);
  EXPECT_LE(stats.warmup_sims + stats.fallback_sims, stats.points_simulated);
  EXPECT_GE(stats.rounds, 1u);  // the warmup fit counts as round 1
  EXPECT_GT(stats.trained_samples, 0u);
  EXPECT_GE(stats.mre, 0.0);
  EXPECT_EQ(result.simulations, stats.points_simulated);
}

TEST(SurrogateSweep, ParetoFrontierIdenticalToExhaustive) {
  ExecGuard guard;
  exec::SimCache::global().set_enabled(false);
  const DseContext context = stratified_context();
  const GridSpace space = make_design_space(stratified_axes());

  const ParetoDseResult truth = run_pareto_dse(context, space);

  DseContext surrogate_context = context;
  surrogate_context.surrogate_enabled = true;
  const ParetoDseResult pruned = run_pareto_dse(surrogate_context, space);

  EXPECT_EQ(pruned.feasible_count, truth.feasible_count);
  ASSERT_EQ(pruned.frontier.size(), truth.frontier.size());
  for (std::size_t p = 0; p < truth.frontier.size(); ++p) {
    EXPECT_EQ(pruned.frontier[p].flat_index, truth.frontier[p].flat_index) << "point " << p;
    EXPECT_TRUE(bit_equal(pruned.frontier[p].time, truth.frontier[p].time));
    EXPECT_TRUE(bit_equal(pruned.frontier[p].power, truth.frontier[p].power));
    EXPECT_TRUE(bit_equal(pruned.frontier[p].area, truth.frontier[p].area));
  }
}

TEST(SurrogateSweep, DeterministicAcrossThreadCountsAndWarmCache) {
  ExecGuard guard;
  exec::SimCache& cache = exec::SimCache::global();
  cache.set_enabled(false);
  DseContext context = stratified_context();
  context.surrogate_enabled = true;
  const GridSpace space = make_design_space(stratified_axes());

  exec::set_thread_count(1);
  const FullDseResult reference = run_full_dse(context, space);

  auto expect_same = [&](const FullDseResult& other, const std::string& what) {
    EXPECT_EQ(other.best_index, reference.best_index) << what;
    EXPECT_TRUE(bit_equal(other.best_time, reference.best_time)) << what;
    ASSERT_EQ(other.times.size(), reference.times.size());
    for (std::size_t flat = 0; flat < reference.times.size(); ++flat)
      EXPECT_TRUE(bit_equal(other.times[flat], reference.times[flat]))
          << what << " flat " << flat;
    EXPECT_EQ(other.surrogate.points_simulated, reference.surrogate.points_simulated)
        << what;
    EXPECT_EQ(other.surrogate.classes_pruned, reference.surrogate.classes_pruned) << what;
    EXPECT_EQ(other.surrogate.rounds, reference.surrogate.rounds) << what;
  };

  for (const std::size_t threads : {2UL, 8UL}) {
    exec::set_thread_count(threads);
    expect_same(run_full_dse(context, space), "threads=" + std::to_string(threads));
  }

  // Warm cache: the replayed results are bitwise identical, so the
  // scheduler must take the exact same admit/prune path.
  cache.set_enabled(true);
  cache.clear();
  exec::set_thread_count(8);
  expect_same(run_full_dse(context, space), "cold cached");
  expect_same(run_full_dse(context, space), "warm replay");
}

TEST(SurrogateSweep, WiderBandSimulatesNoMorePoints) {
  ExecGuard guard;
  exec::SimCache::global().set_enabled(false);
  const GridSpace space = make_design_space(stratified_axes());

  DseContext tight = stratified_context();
  tight.surrogate_enabled = true;
  tight.surrogate_band = 0.05;
  const FullDseResult tight_result = run_full_dse(tight, space);

  DseContext loose = stratified_context();
  loose.surrogate_enabled = true;
  loose.surrogate_band = 10.0;  // admit anything within 11x of the incumbent
  const FullDseResult loose_result = run_full_dse(loose, space);

  // A wider band admits a superset of classes; both still land on the
  // exhaustive optimum (identity is checked above, ordering here).
  EXPECT_LE(tight_result.surrogate.classes_simulated,
            loose_result.surrogate.classes_simulated);
  EXPECT_EQ(tight_result.best_index, loose_result.best_index);
  EXPECT_TRUE(bit_equal(tight_result.best_time, loose_result.best_time));
}

}  // namespace
}  // namespace c2b
