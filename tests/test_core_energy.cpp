#include "c2b/core/energy.h"

#include <gtest/gtest.h>

namespace c2b {
namespace {

AppProfile app_profile() {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::linear();
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile machine_profile() {
  MachineProfile machine;
  machine.chip.total_area = 96.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;
  return machine;
}

EnergyAwareModel make_model() {
  return EnergyAwareModel(C2BoundModel(app_profile(), machine_profile()), EnergyModel{});
}

TEST(Energy, ComponentsSumToTotal) {
  const EnergyAwareModel model = make_model();
  const EnergyEvaluation e =
      model.evaluate({.n_cores = 8, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0});
  EXPECT_NEAR(e.total_energy,
              e.core_dynamic + e.l1_dynamic + e.l2_dynamic + e.dram_dynamic + e.static_energy,
              e.total_energy * 1e-12);
  EXPECT_GT(e.core_dynamic, 0.0);
  EXPECT_GT(e.l1_dynamic, 0.0);
  EXPECT_GT(e.static_energy, 0.0);
  EXPECT_NEAR(e.edp, e.total_energy * e.performance.execution_time, e.edp * 1e-12);
  EXPECT_NEAR(e.ed2p, e.edp * e.performance.execution_time, e.ed2p * 1e-12);
  EXPECT_NEAR(e.average_power * e.performance.execution_time, e.total_energy,
              e.total_energy * 1e-9);
}

TEST(Energy, BiggerCoresBurnMorePerInstruction) {
  const EnergyAwareModel model = make_model();
  const EnergyEvaluation small =
      model.evaluate({.n_cores = 4, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0});
  const EnergyEvaluation big =
      model.evaluate({.n_cores = 4, .a0 = 8.0, .a1 = 1.0, .a2 = 2.0});
  EXPECT_GT(big.core_dynamic, small.core_dynamic);
  EXPECT_LT(big.performance.execution_time, small.performance.execution_time);
}

TEST(Energy, BiggerCachesCostEnergyButCutDramEnergy) {
  const EnergyAwareModel model = make_model();
  const EnergyEvaluation lean =
      model.evaluate({.n_cores = 4, .a0 = 4.0, .a1 = 0.2, .a2 = 0.5});
  const EnergyEvaluation cached =
      model.evaluate({.n_cores = 4, .a0 = 4.0, .a1 = 2.0, .a2 = 6.0});
  EXPECT_GT(cached.l1_dynamic / lean.l1_dynamic, 1.0);  // pricier accesses
  EXPECT_LT(cached.dram_dynamic, lean.dram_dynamic);    // fewer of them
}

TEST(Energy, ObjectiveValuesMatchEvaluation) {
  const EnergyAwareModel model = make_model();
  const DesignPoint d{.n_cores = 8, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0};
  const EnergyEvaluation e = model.evaluate(d);
  EXPECT_DOUBLE_EQ(model.objective_value(d, DesignObjective::kTime),
                   e.performance.execution_time);
  EXPECT_DOUBLE_EQ(model.objective_value(d, DesignObjective::kEnergy), e.total_energy);
  EXPECT_DOUBLE_EQ(model.objective_value(d, DesignObjective::kEdp), e.edp);
  EXPECT_DOUBLE_EQ(model.objective_value(d, DesignObjective::kEd2p), e.ed2p);
}

TEST(Energy, InvalidModelRejected) {
  EnergyModel bad;
  bad.epi_base = 0.0;
  EXPECT_THROW(EnergyAwareModel(C2BoundModel(app_profile(), machine_profile()), bad),
               std::invalid_argument);
}

TEST(Energy, OptimizerObjectivesOrderSensibly) {
  OptimizerOptions options;
  options.n_max = 24;
  options.nelder_mead_restarts = 2;
  const EnergyAwareOptimizer opt(make_model(), options);

  const EnergyOptimum fastest = opt.optimize(DesignObjective::kTime);
  const EnergyOptimum frugal = opt.optimize(DesignObjective::kEnergy);
  const EnergyOptimum balanced = opt.optimize(DesignObjective::kEdp);

  // Each specialist wins its own metric.
  EXPECT_LE(fastest.best.performance.execution_time,
            frugal.best.performance.execution_time * (1.0 + 1e-6));
  EXPECT_LE(frugal.best.total_energy, fastest.best.total_energy * (1.0 + 1e-6));
  // EDP sits between the extremes on both axes (within optimizer slack).
  EXPECT_LE(balanced.best.edp, fastest.best.edp * (1.0 + 1e-6));
  EXPECT_LE(balanced.best.edp, frugal.best.edp * (1.0 + 1e-6));
}

TEST(Energy, ParetoFrontIsNonDominatedAndSorted) {
  OptimizerOptions options;
  options.n_max = 16;
  options.nelder_mead_restarts = 1;
  const EnergyAwareOptimizer opt(make_model(), options);
  const std::vector<ParetoPoint> front = opt.pareto_front();
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].eval.performance.execution_time,
              front[i - 1].eval.performance.execution_time);
    EXPECT_LT(front[i].eval.total_energy, front[i - 1].eval.total_energy);
  }
}

}  // namespace
}  // namespace c2b
