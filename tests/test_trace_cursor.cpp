#include "c2b/trace/cursor.h"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b {
namespace {

ZipfStreamGenerator::Params zipf_params(std::uint64_t seed, double f_mem = 0.4) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 10;
  p.zipf_exponent = 0.9;
  p.f_mem = f_mem;
  p.write_ratio = 0.3;
  p.seed = seed;
  return p;
}

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  return a.kind == b.kind && a.depends_on_prev_mem == b.depends_on_prev_mem &&
         a.address == b.address;
}

std::size_t true_compute_run(const std::vector<TraceRecord>& records, std::size_t pos) {
  std::size_t run = 0;
  while (pos + run < records.size() && records[pos + run].kind == InstrKind::kCompute) ++run;
  return run;
}

TEST(GeneratorCursor, StreamMatchesMaterializedGenerate) {
  const auto p = zipf_params(11);
  const Trace materialized = ZipfStreamGenerator(p).generate(10'000);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 10'000,
                              /*chunk_records=*/256);
  for (std::size_t i = 0; i < materialized.records.size(); ++i) {
    const TraceRecord* rec = cursor.peek();
    ASSERT_NE(rec, nullptr) << "cursor ended early at record " << i;
    ASSERT_TRUE(records_equal(*rec, materialized.records[i])) << "divergence at record " << i;
    cursor.advance();
  }
  EXPECT_EQ(cursor.peek(), nullptr);
}

TEST(GeneratorCursor, ComputeRunIsLowerBoundAndNeverOvercounts) {
  // Few memory records -> long compute runs that straddle the tiny chunk,
  // exercising the "capped at the buffer boundary" half of the contract.
  const auto p = zipf_params(12, /*f_mem=*/0.02);
  const Trace materialized = ZipfStreamGenerator(p).generate(5'000);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 5'000,
                              /*chunk_records=*/64);
  for (std::size_t pos = 0; pos < materialized.records.size(); ++pos) {
    const std::size_t run = cursor.compute_run(48);
    const std::size_t truth = true_compute_run(materialized.records, pos);
    ASSERT_LE(run, 48u);
    ASSERT_LE(run, truth) << "compute_run overcounted at record " << pos;
    // A nonzero run that is below both caps must be exact (it ended on a
    // real non-compute record, not on the chunk boundary).
    ASSERT_NE(cursor.peek(), nullptr);
    cursor.advance();
  }
}

TEST(GeneratorCursor, SkipCrossesChunkBoundaries) {
  const auto p = zipf_params(13);
  const Trace materialized = ZipfStreamGenerator(p).generate(4'000);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 4'000,
                              /*chunk_records=*/128);
  // Odd stride so skips land at every offset within the 128-record chunks.
  std::size_t pos = 0;
  while (pos + 7 < materialized.records.size()) {
    cursor.skip(7);
    pos += 7;
    const TraceRecord* rec = cursor.peek();
    ASSERT_NE(rec, nullptr);
    ASSERT_TRUE(records_equal(*rec, materialized.records[pos])) << "divergence after skip to "
                                                                << pos;
  }
}

TEST(GeneratorCursor, ResetReplaysIdenticalStream) {
  const auto p = zipf_params(14);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 2'000,
                              /*chunk_records=*/100);
  std::vector<TraceRecord> first_pass;
  for (const TraceRecord* rec = cursor.peek(); rec != nullptr; rec = cursor.peek()) {
    first_pass.push_back(*rec);
    cursor.advance();
  }
  EXPECT_EQ(first_pass.size(), 2'000u);
  cursor.reset();
  for (std::size_t i = 0; i < first_pass.size(); ++i) {
    const TraceRecord* rec = cursor.peek();
    ASSERT_NE(rec, nullptr);
    ASSERT_TRUE(records_equal(*rec, first_pass[i])) << "replay diverged at record " << i;
    cursor.advance();
  }
  EXPECT_EQ(cursor.peek(), nullptr);
}

TEST(GeneratorCursor, ResetMidStreamReplaysFromRecordZero) {
  const auto p = zipf_params(16);
  const Trace materialized = ZipfStreamGenerator(p).generate(3'000);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 3'000,
                              /*chunk_records=*/128);
  // Reset from several interior offsets (mid-chunk, chunk boundary, last
  // record); each replay must restart at record 0 and stay byte-identical.
  for (const std::size_t stop : {std::size_t{1}, std::size_t{77}, std::size_t{128},
                                 std::size_t{129}, std::size_t{2'999}}) {
    cursor.skip(stop);
    cursor.reset();
    for (std::size_t i = 0; i < 300; ++i) {
      const TraceRecord* rec = cursor.peek();
      ASSERT_NE(rec, nullptr);
      ASSERT_TRUE(records_equal(*rec, materialized.records[i]))
          << "replay after reset at " << stop << " diverged at record " << i;
      cursor.advance();
    }
    cursor.reset();
  }
}

TEST(GeneratorCursor, ResetReuseUnderSkipAndComputeRunInterleave) {
  // The kernel consumes cursors through skip()/compute_run()/advance(), not
  // just peek()/advance(); a reset cursor must reproduce those views too.
  const auto p = zipf_params(17, /*f_mem=*/0.1);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 2'000,
                              /*chunk_records=*/96);
  auto walk = [](GeneratorTraceCursor& c) {
    std::vector<std::uint64_t> view;
    while (const TraceRecord* rec = c.peek()) {
      view.push_back(static_cast<std::uint64_t>(rec->kind));
      view.push_back(rec->address);
      const std::size_t run = c.compute_run(11);
      view.push_back(run);
      c.skip(run > 0 ? run : 1);
    }
    return view;
  };
  const std::vector<std::uint64_t> first = walk(cursor);
  cursor.reset();
  const std::vector<std::uint64_t> second = walk(cursor);
  EXPECT_EQ(first, second);
}

TEST(GeneratorCursor, ResetCursorDrivesIdenticalSimulations) {
  // One cursor object, two full kernel runs: reset() reuse must be
  // indistinguishable from constructing a fresh cursor.
  sim::SystemConfig config;
  const auto p = zipf_params(18);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 15'000,
                              /*chunk_records=*/256);
  std::vector<TraceCursor*> cursors{&cursor};
  const sim::SystemResult first = sim::simulate_system_streaming(config, cursors);
  cursor.reset();
  const sim::SystemResult second = sim::simulate_system_streaming(config, cursors);
  EXPECT_EQ(first.cycles, second.cycles);
  ASSERT_EQ(first.cores.size(), second.cores.size());
  EXPECT_EQ(first.cores[0].instructions, second.cores[0].instructions);
  EXPECT_EQ(first.cores[0].memory_accesses, second.cores[0].memory_accesses);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.cores[0].cpi),
            std::bit_cast<std::uint64_t>(second.cores[0].cpi));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.cores[0].camat.camat_value),
            std::bit_cast<std::uint64_t>(second.cores[0].camat.camat_value));
}

TEST(GeneratorCursor, ResidentWindowBoundedByChunk) {
  const auto p = zipf_params(15);
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 50'000,
                              /*chunk_records=*/64);
  EXPECT_EQ(cursor.stream_length(), 50'000u);
  EXPECT_EQ(cursor.chunk_capacity(), 64u);
  std::size_t consumed = 0;
  while (cursor.peek() != nullptr) {
    cursor.advance();
    ++consumed;
    ASSERT_LE(cursor.max_resident_records(), 64u);
  }
  EXPECT_EQ(consumed, 50'000u);
  EXPECT_GT(cursor.max_resident_records(), 0u);
}

TEST(VectorCursor, ComputeRunAndSkipMatchRecords) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 40; ++i) {
    TraceRecord r;
    r.kind = (i % 5 == 4) ? InstrKind::kLoad : InstrKind::kCompute;
    r.address = static_cast<std::uint64_t>(i) * 64;
    records.push_back(r);
  }
  VectorTraceCursor cursor(records);
  EXPECT_EQ(cursor.compute_run(100), 4u);  // records 0..3 compute, 4 is a load
  EXPECT_EQ(cursor.compute_run(3), 3u);    // caller's limit caps the count
  cursor.skip(5);
  EXPECT_EQ(cursor.compute_run(100), 4u);
  ASSERT_NE(cursor.peek(), nullptr);
  EXPECT_EQ(cursor.peek()->address, 5u * 64);
  cursor.reset();
  EXPECT_EQ(cursor.peek()->address, 0u);
}

TEST(StreamingSimulation, MatchesMaterializedKernelBitwise) {
  // The quick end-to-end identity check; the heavy random-config version
  // lives in the perf-labeled kernel-equivalence suite and the `kernel`
  // oracle family.
  sim::SystemConfig config;
  config.hierarchy.cores = 2;
  std::vector<Trace> traces;
  std::vector<std::unique_ptr<TraceCursor>> owned;
  std::vector<TraceCursor*> cursors;
  for (std::uint64_t c = 0; c < 2; ++c) {
    const auto p = zipf_params(30 + c);
    traces.push_back(ZipfStreamGenerator(p).generate(20'000));
    owned.push_back(std::make_unique<GeneratorTraceCursor>(
        std::make_unique<ZipfStreamGenerator>(p), 20'000, /*chunk_records=*/512));
    cursors.push_back(owned.back().get());
  }
  const sim::SystemResult materialized = sim::simulate_system(config, traces);
  const sim::SystemResult streamed = sim::simulate_system_streaming(config, cursors);
  ASSERT_EQ(streamed.cores.size(), materialized.cores.size());
  EXPECT_EQ(streamed.cycles, materialized.cycles);
  for (std::size_t c = 0; c < streamed.cores.size(); ++c) {
    EXPECT_EQ(streamed.cores[c].instructions, materialized.cores[c].instructions);
    EXPECT_EQ(streamed.cores[c].memory_accesses, materialized.cores[c].memory_accesses);
    EXPECT_EQ(streamed.cores[c].cycles, materialized.cores[c].cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(streamed.cores[c].camat.camat_value),
              std::bit_cast<std::uint64_t>(materialized.cores[c].camat.camat_value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(streamed.cores[c].camat.apc),
              std::bit_cast<std::uint64_t>(materialized.cores[c].camat.apc));
  }
}

}  // namespace
}  // namespace c2b
