#include "c2b/linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "c2b/common/rng.h"

namespace c2b {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
  EXPECT_THROW(a += Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, MatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = a * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeAndNorms) {
  Matrix a{{3.0, 0.0}, {4.0, 0.0}};
  const Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1.0, 2.0, 2.0};
  const Vector b{2.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 8.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 2.0);
  const Vector c = axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_THROW(dot(a, Vector{1.0}), std::invalid_argument);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = lu_solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = lu_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, std::invalid_argument); }

TEST(Lu, Determinant) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
  Matrix swapped{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(swapped).determinant(), -1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + trial % 6;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    for (std::size_t d = 0; d < n; ++d) a(d, d) += 3.0;  // keep well-conditioned
    Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    const Vector b = a * x_true;
    const Vector x = lu_solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Lu, MatrixRhsSolve) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Matrix inv = LuDecomposition(a).solve(Matrix::identity(2));
  EXPECT_NEAR(inv(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.25, 1e-12);
}

}  // namespace
}  // namespace c2b
