// Meta-tests for the property engine itself: a deliberately broken
// implementation ("mutant") must be caught, shrunk to a minimal
// counterexample, and reported with a working one-line repro — the
// engine's whole value proposition, asserted end to end.

#include "c2b/check/property.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "c2b/metrics/amat.h"

namespace c2b::check {
namespace {

Property<std::uint64_t> threshold_property(std::uint64_t threshold) {
  Property<std::uint64_t> p;
  p.name = "below_threshold";
  p.generate = [](Rng& rng) { return rng.uniform_below(100'000); };
  p.holds = [threshold](const std::uint64_t& v) -> std::optional<std::string> {
    if (v < threshold) return std::nullopt;
    return "value " + std::to_string(v) + " >= " + std::to_string(threshold);
  };
  p.shrink = [](const std::uint64_t& v) { return shrink_integer(v); };
  p.print = [](const std::uint64_t& v) { return std::to_string(v); };
  return p;
}

TEST(CheckEngine, PassingPropertyRunsAllCases) {
  CheckOptions options;
  options.seed = 42;
  options.cases = 100;
  const CheckResult result = check(threshold_property(1u << 30), options);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.cases_run, 100u);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_NE(result.summary().find("PASS"), std::string::npos);
}

TEST(CheckEngine, ShrinksToMinimalCounterexample) {
  CheckOptions options;
  options.seed = 42;
  options.cases = 200;
  const CheckResult result = check(threshold_property(1000), options);
  ASSERT_FALSE(result.passed);
  ASSERT_TRUE(result.counterexample.has_value());
  // The 0 / halves / value-1 ladder under greedy restart converges to the
  // smallest failing input — exactly the threshold.
  EXPECT_EQ(result.counterexample->value, "1000");
  EXPECT_GT(result.counterexample->shrink_steps, 0u);
  EXPECT_NE(result.repro.find("C2B_CHECK_SEED=42"), std::string::npos);
  EXPECT_NE(result.repro.find("C2B_CHECK_CASE="), std::string::npos);
}

TEST(CheckEngine, ReproReplaysTheExactFailure) {
  CheckOptions options;
  options.seed = 42;
  options.cases = 200;
  const CheckResult first = check(threshold_property(1000), options);
  ASSERT_FALSE(first.passed);

  // Replay just the failing case, as the repro line instructs.
  CheckOptions replay = options;
  replay.only_case = first.counterexample->case_index;
  const CheckResult second = check(threshold_property(1000), replay);
  ASSERT_FALSE(second.passed);
  EXPECT_EQ(second.cases_run, 1u);
  EXPECT_EQ(second.counterexample->value, first.counterexample->value);
  EXPECT_EQ(second.counterexample->case_index, first.counterexample->case_index);
}

// The acceptance gate for the whole harness: seed a realistic mutant — a
// C-AMAT implementation with a 2% inflation on the pure-miss term (the
// kind of off-by-a-constant a refactor introduces) — and require the
// engine to catch it against the reference implementation.
TEST(CheckEngine, SeededCamatMutantIsCaught) {
  auto mutant_camat = [](const CamatParams& p) {
    return p.hit_time / p.hit_concurrency +
           1.02 * p.pure_miss_rate * p.pure_miss_penalty / p.miss_concurrency;
  };

  Property<CamatParams> p;
  p.name = "camat_matches_reference";
  p.generate = [](Rng& rng) {
    CamatParams params;
    params.hit_time = rng.uniform(1.0, 4.0);
    params.hit_concurrency = rng.uniform(1.0, 8.0);
    params.pure_miss_rate = rng.uniform(0.0, 0.5);
    params.pure_miss_penalty = rng.uniform(0.0, 200.0);
    params.miss_concurrency = rng.uniform(1.0, 16.0);
    return params;
  };
  p.holds = [&](const CamatParams& params) -> std::optional<std::string> {
    const double reference = camat(params);
    const double got = mutant_camat(params);
    if (std::abs(got - reference) <= 1e-12 * std::max(1.0, reference)) return std::nullopt;
    std::ostringstream os;
    os << "mutant C-AMAT " << got << " != reference " << reference;
    return os.str();
  };
  p.print = [](const CamatParams& params) {
    std::ostringstream os;
    os << "CamatParams{H=" << params.hit_time << ", C_H=" << params.hit_concurrency
       << ", pMR=" << params.pure_miss_rate << ", pAMP=" << params.pure_miss_penalty
       << ", C_M=" << params.miss_concurrency << '}';
    return os.str();
  };

  CheckOptions options;
  options.seed = 42;
  options.cases = 100;
  const CheckResult result = check(p, options);
  ASSERT_FALSE(result.passed) << "a 2% C-AMAT mutant must not survive 100 cases";
  EXPECT_NE(result.counterexample->message.find("mutant C-AMAT"), std::string::npos);
  EXPECT_NE(result.summary().find("C2B_CHECK_SEED=42"), std::string::npos);
}

TEST(CheckEngine, CorpusEntryPersisted) {
  const std::string corpus =
      (std::filesystem::path(testing::TempDir()) / "c2b_check_corpus").string();
  std::filesystem::remove_all(corpus);

  CheckOptions options;
  options.seed = 42;
  options.cases = 200;
  options.corpus_dir = corpus;
  const CheckResult result = check(threshold_property(1000), options);
  ASSERT_FALSE(result.passed);
  ASSERT_FALSE(result.corpus_path.empty());
  std::ifstream in(result.corpus_path);
  ASSERT_TRUE(in.good()) << "corpus file should exist: " << result.corpus_path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("C2B_CHECK_SEED=42"), std::string::npos);
  EXPECT_NE(contents.str().find("1000"), std::string::npos);
  std::filesystem::remove_all(corpus);
}

TEST(CheckEngine, ExceptionInPredicateIsAFailure) {
  Property<std::uint64_t> p = threshold_property(1u << 30);
  p.name = "throws_on_big";
  p.holds = [](const std::uint64_t& v) -> std::optional<std::string> {
    if (v > 1000) throw std::runtime_error("boom at " + std::to_string(v));
    return std::nullopt;
  };
  CheckOptions options;
  options.seed = 42;
  options.cases = 100;
  const CheckResult result = check(p, options);
  ASSERT_FALSE(result.passed);
  EXPECT_NE(result.counterexample->message.find("exception: boom"), std::string::npos);
}

TEST(CheckEngine, EnvOverridesParsed) {
  ::setenv("C2B_CHECK_SEED", "777", 1);
  ::setenv("C2B_CHECK_CASES", "17", 1);
  ::setenv("C2B_CHECK_CASE", "5", 1);
  ::setenv("C2B_CHECK_CORPUS", "/tmp/corpus-env", 1);
  const CheckOptions options = options_from_env();
  ::unsetenv("C2B_CHECK_SEED");
  ::unsetenv("C2B_CHECK_CASES");
  ::unsetenv("C2B_CHECK_CASE");
  ::unsetenv("C2B_CHECK_CORPUS");

  EXPECT_EQ(options.seed, 777u);
  EXPECT_EQ(options.cases, 17u);
  ASSERT_TRUE(options.only_case.has_value());
  EXPECT_EQ(*options.only_case, 5u);
  EXPECT_EQ(options.corpus_dir, "/tmp/corpus-env");
}

TEST(CheckEngine, CasesAreIndependentOfHowManyRan) {
  // Case i draws from its own derived stream: the value seen when running
  // cases [0, 100) must equal the value seen when running case i alone.
  Property<std::uint64_t> p = threshold_property(1u << 30);
  std::vector<std::uint64_t> full;
  p.holds = [&full](const std::uint64_t& v) -> std::optional<std::string> {
    full.push_back(v);
    return std::nullopt;
  };
  CheckOptions options;
  options.seed = 9;
  options.cases = 20;
  (void)check(p, options);
  ASSERT_EQ(full.size(), 20u);

  std::vector<std::uint64_t> solo;
  p.holds = [&solo](const std::uint64_t& v) -> std::optional<std::string> {
    solo.push_back(v);
    return std::nullopt;
  };
  CheckOptions one = options;
  one.only_case = 13;
  (void)check(p, one);
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0], full[13]);
}

TEST(CheckEngine, ShrinkHelpersProduceSmallerValues) {
  for (const std::uint64_t v : shrink_integer(1000)) EXPECT_LT(v, 1000u);
  EXPECT_TRUE(shrink_integer(0).empty());
  for (const double v : shrink_double(8.5, 1.0)) {
    EXPECT_LT(v, 8.5);
    EXPECT_GE(v, 1.0);
  }
  const std::vector<int> seq{1, 2, 3, 4};
  for (const auto& smaller : shrink_vector<int>(seq)) EXPECT_LT(smaller.size(), seq.size());
}

}  // namespace
}  // namespace c2b::check
