// Property: the batched-replay grouping key (trace_class_key) agrees with a
// brute-force comparison of the record streams simulate_design_time would
// consume. Equal keys MUST mean bit-identical streams — that is the safety
// contract batching rests on. (The converse is allowed to be conservative:
// two contexts may produce the same streams under different keys, e.g. when
// a per-core-cap change is absorbed by the window clamp; splitting such a
// class only costs regeneration, never correctness.)

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "c2b/aps/dse.h"
#include "c2b/check/generators.h"
#include "c2b/common/rng.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

/// Materialize every stream the (context, cores) design consumes: the
/// serial-phase stream, then one per-core parallel-phase stream. Re-derives
/// the Sun-Ni windows and footprint scales from the documented contract
/// (independently of dse.cpp's PhasePlan, which is the point).
std::vector<Trace> brute_force_streams(const DseContext& context, std::uint32_t cores) {
  const double n_d = static_cast<double>(cores);
  const ScalingFunction& g = context.workload.g;
  const double ic_total = g(n_d) * static_cast<double>(context.instructions0);
  const double serial_ic = context.workload.f_seq * ic_total;
  const double parallel_ic = (1.0 - context.workload.f_seq) * ic_total / n_d;
  const double cap = static_cast<double>(context.per_core_cap);
  auto window = [&](double ic) -> std::uint64_t {
    if (ic < 1.0) return 0;
    return static_cast<std::uint64_t>(std::min(std::max(ic, 1000.0), cap));
  };

  std::vector<Trace> streams;
  if (const std::uint64_t w = window(serial_ic); w != 0)
    streams.push_back(
        context.workload
            .make_generator(std::max(1.0, g.memory_scale(n_d)), context.seed)
            ->generate(w));
  if (const std::uint64_t w = window(parallel_ic); w != 0)
    for (std::uint32_t c = 0; c < cores; ++c)
      streams.push_back(
          context.workload
              .make_generator(std::max(1.0, g.memory_scale(n_d) / n_d),
                              Rng::derive_stream_seed(context.seed, c))
              ->generate(w));
  return streams;
}

bool streams_equal(const std::vector<Trace>& a, const std::vector<Trace>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].records.size() != b[s].records.size()) return false;
    for (std::size_t i = 0; i < a[s].records.size(); ++i) {
      const TraceRecord& ra = a[s].records[i];
      const TraceRecord& rb = b[s].records[i];
      if (ra.kind != rb.kind || ra.depends_on_prev_mem != rb.depends_on_prev_mem ||
          ra.address != rb.address)
        return false;
    }
  }
  return true;
}

std::uint32_t pick_cores(Rng& rng, const check::DseScenario& scenario) {
  const std::vector<double>& n = scenario.axes.n;
  return static_cast<std::uint32_t>(
      n[static_cast<std::size_t>(rng.uniform_below(n.size()))]);
}

TEST(BatchKeyProperty, EqualKeysImplyBitIdenticalStreams) {
  Rng rng(20260805);
  std::size_t equal_key_pairs = 0;
  std::size_t distinct_key_pairs = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const check::DseScenario a = check::gen_dse_scenario(rng);
    DseContext context_b = a.context;
    const std::uint32_t cores_a = pick_cores(rng, a);
    std::uint32_t cores_b = cores_a;

    // Half the pairs share every stream-determining field (possibly
    // differing in timing-only grid axes, which the key must ignore); the
    // other half mutate one field or draw an unrelated scenario.
    if (rng.bernoulli(0.5)) {
      switch (rng.uniform_below(4)) {
        case 0: context_b.seed += 1; break;
        case 1: context_b.instructions0 *= 2; break;
        case 2: context_b.per_core_cap = std::max<std::uint64_t>(1'000, context_b.per_core_cap / 2); break;
        default: cores_b = cores_a == 1 ? 2 : cores_a * 2; break;
      }
    }

    const std::string key_a = trace_class_key(a.context, cores_a);
    const std::string key_b = trace_class_key(context_b, cores_b);
    const bool keys_equal = key_a == key_b;
    const bool same_streams =
        streams_equal(brute_force_streams(a.context, cores_a),
                      brute_force_streams(context_b, cores_b));
    if (keys_equal) {
      ++equal_key_pairs;
      ASSERT_TRUE(same_streams)
          << "pair " << i << ": equal keys but diverging streams\nkey: " << key_a;
    } else {
      ++distinct_key_pairs;
    }
  }
  // The fixed seed must exercise both branches or the property is vacuous.
  EXPECT_GE(equal_key_pairs, 10u);
  EXPECT_GE(distinct_key_pairs, 10u);
}

TEST(BatchKeyProperty, KeyDetectsEveryStreamDeterminingMutation) {
  // Directed (non-random) complement: each stream-determining field flips
  // the key on its own, and each flip indeed changes the streams.
  Rng rng(7);
  const check::DseScenario base = check::gen_dse_scenario(rng);
  const std::uint32_t cores = pick_cores(rng, base);
  const std::string key = trace_class_key(base.context, cores);
  const std::vector<Trace> streams = brute_force_streams(base.context, cores);

  DseContext seed_mutant = base.context;
  seed_mutant.seed += 1;
  EXPECT_NE(trace_class_key(seed_mutant, cores), key);
  EXPECT_FALSE(streams_equal(brute_force_streams(seed_mutant, cores), streams));

  EXPECT_NE(trace_class_key(base.context, cores + 1), key);

  DseContext workload_mutant = base.context;
  Rng other(99);
  do {
    workload_mutant.workload = check::gen_workload_spec(other);
  } while (workload_mutant.workload.uid == base.context.workload.uid);
  EXPECT_NE(trace_class_key(workload_mutant, cores), key);
}

}  // namespace
}  // namespace c2b
