#include "c2b/sim/detector/detector.h"

#include <gtest/gtest.h>

#include <bit>

#include "c2b/common/rng.h"
#include "c2b/metrics/timeline.h"
#include "c2b/sim/detector/detector_reference.h"

namespace c2b::sim {
namespace {

TEST(Detector, MatchesFigure1Example) {
  CamatDetector detector;
  for (const TimelineAccess& a : figure1_example_timeline())
    detector.record_access(a.start_cycle, a.hit_cycles, a.miss_penalty_cycles);
  const TimelineMetrics m = detector.finalize();
  EXPECT_DOUBLE_EQ(m.camat_value, 1.6);
  EXPECT_DOUBLE_EQ(m.amat_value, 3.8);
  EXPECT_DOUBLE_EQ(m.camat_params.hit_concurrency, 2.5);
  EXPECT_DOUBLE_EQ(m.camat_params.miss_concurrency, 1.0);
  EXPECT_EQ(m.pure_misses, 1u);
}

TEST(Detector, EmptyDetectorFinalizesToZero) {
  CamatDetector detector;
  const TimelineMetrics m = detector.finalize();
  EXPECT_EQ(m.accesses, 0u);
  EXPECT_DOUBLE_EQ(m.camat_value, 0.0);
}

TEST(Detector, IncrementalAdvanceEqualsOneShot) {
  const auto accesses = figure1_example_timeline();
  CamatDetector incremental;
  for (const TimelineAccess& a : accesses) {
    incremental.record_access(a.start_cycle, a.hit_cycles, a.miss_penalty_cycles);
    incremental.advance(a.start_cycle);  // watermark: nothing future-dated
  }
  const TimelineMetrics inc = incremental.finalize();
  const TimelineMetrics ref = analyze_timeline(accesses);
  EXPECT_DOUBLE_EQ(inc.camat_value, ref.camat_value);
  EXPECT_EQ(inc.pure_misses, ref.pure_misses);
  EXPECT_EQ(inc.hit_cycle_count, ref.hit_cycle_count);
}

TEST(Detector, AdvanceBoundsLiveWindow) {
  CamatDetector detector;
  for (std::uint64_t i = 0; i < 1000; ++i) detector.record_access(i * 4, 3, 0);
  detector.advance(900 * 4);
  // The live cycle table must not retain the already-finalized prefix.
  EXPECT_LT(detector.live_cycle_window(), 400u);
}

// Property: on random access streams the online detector must produce
// exactly the offline analyzer's numbers, regardless of how advance() is
// interleaved.
class DetectorEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorEquivalence, OnlineEqualsOffline) {
  Rng rng(GetParam());
  std::vector<TimelineAccess> accesses;
  CamatDetector detector;
  std::uint64_t t = 0;
  const int count = 50 + static_cast<int>(rng.uniform_below(300));
  for (int i = 0; i < count; ++i) {
    t += rng.uniform_below(5);
    TimelineAccess a;
    a.start_cycle = t;
    a.hit_cycles = 1 + static_cast<std::uint32_t>(rng.uniform_below(3));
    a.miss_penalty_cycles =
        rng.bernoulli(0.35) ? 1 + static_cast<std::uint32_t>(rng.uniform_below(30)) : 0;
    accesses.push_back(a);
    detector.record_access(a.start_cycle, a.hit_cycles, a.miss_penalty_cycles);
    if (rng.bernoulli(0.3)) detector.advance(t);  // random interleaved folding
  }
  const TimelineMetrics online = detector.finalize();
  const TimelineMetrics offline = analyze_timeline(accesses);

  EXPECT_EQ(online.accesses, offline.accesses);
  EXPECT_EQ(online.misses, offline.misses);
  EXPECT_EQ(online.pure_misses, offline.pure_misses);
  EXPECT_EQ(online.hit_cycle_count, offline.hit_cycle_count);
  EXPECT_EQ(online.hit_access_cycles, offline.hit_access_cycles);
  EXPECT_EQ(online.pure_miss_cycle_count, offline.pure_miss_cycle_count);
  EXPECT_EQ(online.memory_active_cycles, offline.memory_active_cycles);
  EXPECT_DOUBLE_EQ(online.camat_value, offline.camat_value);
  EXPECT_DOUBLE_EQ(online.amat_value, offline.amat_value);
  EXPECT_DOUBLE_EQ(online.apc, offline.apc);
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, DetectorEquivalence,
                         ::testing::Range<std::uint64_t>(100, 124));

// Property: the interval-sweep detector must match the retained seed
// per-cycle detector counter for counter on random streams, including
// out-of-order start cycles (bank scheduling reorders them in the real
// simulator) and an adversarial advance cadence where only one side folds
// incrementally. Finalized metrics are cadence-independent, so the two
// sides may legally advance at different watermarks.
class DetectorDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorDifferential, SweepMatchesReferencePerCycle) {
  Rng rng(GetParam());
  CamatDetector sweep;
  ReferenceCamatDetector reference;
  std::uint64_t issue = 0;
  const int count = 50 + static_cast<int>(rng.uniform_below(400));
  for (int i = 0; i < count; ++i) {
    issue += rng.uniform_below(4);
    // Starts jitter ahead of the issue cycle and are non-monotone across
    // consecutive accesses, like per-bank L1 scheduling produces. The first
    // access starts exactly at its issue cycle (banks start idle), which is
    // also what anchors the reference detector's ring at the stream minimum.
    const std::uint64_t start = i == 0 ? issue : issue + rng.uniform_below(6);
    const auto hit = 1 + static_cast<std::uint32_t>(rng.uniform_below(4));
    const auto penalty =
        rng.bernoulli(0.4) ? 1 + static_cast<std::uint32_t>(rng.uniform_below(40)) : 0;
    sweep.record_access(start, hit, penalty);
    reference.record_access(start, hit, penalty);
    // Watermark at the issue cycle is always legal (starts never precede
    // it); fold the two sides at independent random cadences.
    if (rng.bernoulli(0.3)) sweep.advance(issue);
    if (rng.bernoulli(0.3)) reference.advance(issue);
  }
  const TimelineMetrics a = sweep.finalize();
  const TimelineMetrics b = reference.finalize();

  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.pure_misses, b.pure_misses);
  EXPECT_EQ(a.hit_cycle_count, b.hit_cycle_count);
  EXPECT_EQ(a.hit_access_cycles, b.hit_access_cycles);
  EXPECT_EQ(a.pure_miss_cycle_count, b.pure_miss_cycle_count);
  EXPECT_EQ(a.pure_miss_access_cycles, b.pure_miss_access_cycles);
  EXPECT_EQ(a.memory_active_cycles, b.memory_active_cycles);
  // Equal integer counters must give bit-identical doubles: assembly is the
  // shared detail::assemble_detector_metrics.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.amat_value), std::bit_cast<std::uint64_t>(b.amat_value));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.camat_value),
            std::bit_cast<std::uint64_t>(b.camat_value));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.camat_direct),
            std::bit_cast<std::uint64_t>(b.camat_direct));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.apc), std::bit_cast<std::uint64_t>(b.apc));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.concurrency_c),
            std::bit_cast<std::uint64_t>(b.concurrency_c));
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, DetectorDifferential,
                         ::testing::Range<std::uint64_t>(500, 540));

// ---------------------------------------------------------------------------
// APC counter

TEST(ApcCounter, DisjointIntervals) {
  ApcCounter apc;
  apc.add_interval(0, 10);
  apc.add_interval(20, 30);
  EXPECT_EQ(apc.accesses(), 2u);
  EXPECT_EQ(apc.busy_cycles(), 20u);
  EXPECT_DOUBLE_EQ(apc.apc(), 0.1);
}

TEST(ApcCounter, OverlapNotDoubleCounted) {
  ApcCounter apc;
  apc.add_interval(0, 10);
  apc.add_interval(5, 15);
  EXPECT_EQ(apc.busy_cycles(), 15u);
  EXPECT_DOUBLE_EQ(apc.apc(), 2.0 / 15.0);
}

TEST(ApcCounter, ContainedIntervalAddsNothing) {
  ApcCounter apc;
  apc.add_interval(0, 100);
  apc.add_interval(10, 50);
  EXPECT_EQ(apc.busy_cycles(), 100u);
  EXPECT_EQ(apc.accesses(), 2u);
}

TEST(ApcCounter, EmptyIntervalThrows) {
  ApcCounter apc;
  EXPECT_THROW(apc.add_interval(5, 5), std::invalid_argument);
}

}  // namespace
}  // namespace c2b::sim
