#include "c2b/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "c2b/common/rng.h"

namespace c2b {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(77);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, MergeEmptyWithEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(RunningStats, MergeEmptyWithNonEmptyAdoptsEverything) {
  RunningStats empty, full;
  for (const double x : {-3.0, 1.0, 8.0}) full.add(x);
  empty.merge(full);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.sum(), 6.0);
  EXPECT_DOUBLE_EQ(empty.min(), -3.0);
  EXPECT_DOUBLE_EQ(empty.max(), 8.0);
  EXPECT_DOUBLE_EQ(empty.variance(), full.variance());
}

TEST(RunningStats, MergeSingleSampleSides) {
  RunningStats a, b;
  a.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);       // population: ((1)^2+(1)^2)/2
  EXPECT_DOUBLE_EQ(a.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(RunningStats, MergePropagatesMinMaxAcrossSides) {
  RunningStats lo_side, hi_side;
  lo_side.add(-10.0);
  lo_side.add(0.0);
  hi_side.add(1.0);
  hi_side.add(25.0);
  lo_side.merge(hi_side);
  EXPECT_DOUBLE_EQ(lo_side.min(), -10.0);
  EXPECT_DOUBLE_EQ(lo_side.max(), 25.0);

  // And the mirror: the side holding both extremes keeps them.
  RunningStats wide, narrow;
  wide.add(-100.0);
  wide.add(100.0);
  narrow.add(5.0);
  wide.merge(narrow);
  EXPECT_DOUBLE_EQ(wide.min(), -100.0);
  EXPECT_DOUBLE_EQ(wide.max(), 100.0);
}

TEST(BatchStats, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(BatchStats, GeomeanOf) {
  EXPECT_DOUBLE_EQ(geomean_of({2.0, 8.0}), 4.0);
  EXPECT_THROW(geomean_of({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(geomean_of({}), std::invalid_argument);
}

TEST(BatchStats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 25.0);
  EXPECT_THROW(percentile_of(xs, 101.0), std::invalid_argument);
}

TEST(BatchStats, MapeBasics) {
  EXPECT_DOUBLE_EQ(mape({110.0}, {100.0}), 0.1);
  EXPECT_DOUBLE_EQ(mape({1.0, 2.0}, {1.0, 2.0}), 0.0);
  // Zero-truth entries are skipped.
  EXPECT_DOUBLE_EQ(mape({5.0, 110.0}, {0.0, 100.0}), 0.1);
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.bin_count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, QuantileOnUniformMass) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
