#include <gtest/gtest.h>

#include <cmath>

#include "c2b/solver/grid.h"
#include "c2b/solver/lagrange.h"
#include "c2b/solver/minimize.h"
#include "c2b/solver/newton.h"

namespace c2b {
namespace {

// ---------------------------------------------------------------------------
// Newton

TEST(Newton, SolvesLinearSystemInOneStep) {
  // F(x) = A x - b with A = [[2,1],[1,3]], b = [3,5].
  ResidualFn f = [](const Vector& x) {
    return Vector{2 * x[0] + x[1] - 3.0, x[0] + 3 * x[1] - 5.0};
  };
  const NewtonResult r = newton_solve(f, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.8, 1e-8);
  EXPECT_NEAR(r.x[1], 1.4, 1e-8);
  EXPECT_LE(r.iterations, 3);
}

TEST(Newton, SolvesNonlinearSystem) {
  // x^2 + y^2 = 4, x y = 1 (first-quadrant root).
  ResidualFn f = [](const Vector& v) {
    return Vector{v[0] * v[0] + v[1] * v[1] - 4.0, v[0] * v[1] - 1.0};
  };
  const NewtonResult r = newton_solve(f, {2.0, 0.3});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0] * r.x[0] + r.x[1] * r.x[1], 4.0, 1e-7);
  EXPECT_NEAR(r.x[0] * r.x[1], 1.0, 1e-7);
}

TEST(Newton, ScalarCubeRoot) {
  ResidualFn f = [](const Vector& v) { return Vector{v[0] * v[0] * v[0] - 27.0}; };
  const NewtonResult r = newton_solve(f, {5.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
}

TEST(Newton, ReportsSingularJacobian) {
  ResidualFn f = [](const Vector& v) { return Vector{0.0 * v[0] + 1.0}; };  // F' == 0
  const NewtonResult r = newton_solve(f, {1.0});
  EXPECT_FALSE(r.converged);
}

TEST(Newton, NumericJacobianMatchesAnalytic) {
  ResidualFn f = [](const Vector& v) {
    return Vector{std::sin(v[0]) + v[1], v[0] * v[1]};
  };
  const Vector x{0.7, -1.2};
  const Matrix j = numeric_jacobian(f, x);
  EXPECT_NEAR(j(0, 0), std::cos(0.7), 1e-6);
  EXPECT_NEAR(j(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(j(1, 0), -1.2, 1e-6);
  EXPECT_NEAR(j(1, 1), 0.7, 1e-6);
}

// ---------------------------------------------------------------------------
// Scalar / simplex minimizers

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto r = golden_section_minimize([](double x) { return (x - 2.5) * (x - 2.5); }, 0, 10);
  EXPECT_NEAR(r.x, 2.5, 1e-6);
  EXPECT_NEAR(r.value, 0.0, 1e-10);
}

TEST(GoldenSection, BoundaryMinimum) {
  const auto r = golden_section_minimize([](double x) { return x; }, 1.0, 5.0);
  EXPECT_NEAR(r.x, 1.0, 1e-5);
}

TEST(IntegerMinimize, ExactScan) {
  const auto r = integer_minimize(
      [](long long x) { return static_cast<double>((x - 7) * (x - 7)); }, -10, 20);
  EXPECT_EQ(r.x, 7);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(IntegerMinimize, SinglePoint) {
  const auto r = integer_minimize([](long long) { return 3.0; }, 5, 5);
  EXPECT_EQ(r.x, 5);
}

TEST(NelderMead, Rosenbrock2D) {
  MultiFn rosenbrock = [](const Vector& v) {
    const double a = 1.0 - v[0];
    const double b = v[1] - v[0] * v[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  const auto r = nelder_mead_minimize(rosenbrock, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, Quadratic3D) {
  MultiFn f = [](const Vector& v) {
    return (v[0] - 1) * (v[0] - 1) + 2 * (v[1] + 2) * (v[1] + 2) + 0.5 * v[2] * v[2];
  };
  const auto r = nelder_mead_minimize(f, {0.0, 0.0, 5.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], -2.0, 1e-4);
  EXPECT_NEAR(r.x[2], 0.0, 1e-4);
}

TEST(Bisect, FindsBracketedRoot) {
  const auto r = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, UnbracketedReportsFailure) {
  const auto r = bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

// ---------------------------------------------------------------------------
// Grid space

GridSpace small_space() {
  return GridSpace({GridAxis{"x", {1.0, 2.0, 3.0}}, GridAxis{"y", {10.0, 20.0}}});
}

TEST(GridSpace, SizeAndDecode) {
  const GridSpace g = small_space();
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.point(0), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(g.point(5), (std::vector<double>{3.0, 20.0}));
  EXPECT_EQ(g.axis_index("y"), 1u);
  EXPECT_THROW(g.axis_index("z"), std::invalid_argument);
}

TEST(GridSpace, FlatIndexRoundTrip) {
  const GridSpace g = small_space();
  for (std::size_t flat = 0; flat < g.size(); ++flat)
    EXPECT_EQ(g.flat_index(g.indices(flat)), flat);
}

TEST(GridSpace, ForEachVisitsAllInOrder) {
  const GridSpace g = small_space();
  std::size_t expected = 0;
  g.for_each([&](std::size_t flat, const std::vector<double>& values) {
    EXPECT_EQ(flat, expected++);
    EXPECT_EQ(values, g.point(flat));
  });
  EXPECT_EQ(expected, g.size());
}

TEST(GridSpace, ForEachRangeVisitsExactlyTheRequestedIndices) {
  const GridSpace g = small_space();
  ASSERT_GE(g.size(), 4u);
  std::size_t expected = 1;
  g.for_each(1, g.size() - 1, [&](std::size_t flat, const std::vector<double>& values) {
    EXPECT_EQ(flat, expected++);
    EXPECT_EQ(values, g.point(flat));
  });
  EXPECT_EQ(expected, g.size() - 1);
}

TEST(GridSpace, ForEachRangeHandlesBounds) {
  const GridSpace g = small_space();
  // Empty ranges are no-ops, including at the extremes.
  std::size_t visits = 0;
  auto count = [&](std::size_t, const std::vector<double>&) { ++visits; };
  g.for_each(0, 0, count);
  g.for_each(g.size(), g.size(), count);
  EXPECT_EQ(visits, 0u);
  // Full range matches the no-argument overload.
  g.for_each(0, g.size(), count);
  EXPECT_EQ(visits, g.size());
  // Invalid ranges are rejected.
  EXPECT_THROW(g.for_each(2, 1, count), std::invalid_argument);
  EXPECT_THROW(g.for_each(0, g.size() + 1, count), std::invalid_argument);
}

TEST(GridSpace, ForEachRangeConcatenationCoversWholeSpace) {
  const GridSpace g = small_space();
  std::vector<std::size_t> seen;
  const std::size_t mid = g.size() / 2;
  auto record = [&](std::size_t flat, const std::vector<double>&) { seen.push_back(flat); };
  g.for_each(0, mid, record);
  g.for_each(mid, g.size(), record);
  ASSERT_EQ(seen.size(), g.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(GridSpace, NeighborhoodClipsAtBorders) {
  const GridSpace g = small_space();
  const auto corner = g.neighborhood(0, 1);
  EXPECT_EQ(corner.size(), 4u);  // 2x2 block
  const auto center = g.neighborhood(g.flat_index({1, 0}), 1);
  EXPECT_EQ(center.size(), 6u);  // 3x2 block
}

TEST(GridSpace, NeighborhoodRadiusZeroIsJustTheCenter) {
  const GridSpace g = small_space();
  for (std::size_t flat = 0; flat < g.size(); ++flat) {
    const auto n = g.neighborhood(flat, 0);
    ASSERT_EQ(n.size(), 1u);
    EXPECT_EQ(n[0], flat);
  }
}

TEST(GridSpace, NeighborhoodRadiusCoveringEveryAxisIsTheWholeSpace) {
  const GridSpace g = small_space();
  // Radius >= the longest axis clamps to the full range on every axis, so
  // the neighborhood of any center enumerates the entire space in flat
  // (row-major) order.
  for (const std::size_t radius : {std::size_t{3}, std::size_t{100}}) {
    const auto n = g.neighborhood(g.flat_index({1, 1}), radius);
    ASSERT_EQ(n.size(), g.size());
    for (std::size_t i = 0; i < n.size(); ++i) EXPECT_EQ(n[i], i);
  }
}

TEST(GridSpace, NeighborhoodCornerCenters) {
  const GridSpace g = small_space();  // 3 x 2
  // Last flat index: center {2, 1}; radius 1 clips to the {1,2} x {0,1}
  // block.
  const auto last = g.neighborhood(g.size() - 1, 1);
  const std::vector<std::size_t> expected{g.flat_index({1, 0}), g.flat_index({1, 1}),
                                          g.flat_index({2, 0}), g.flat_index({2, 1})};
  EXPECT_EQ(last, expected);
  // A single-point space is its own neighborhood at any radius.
  const GridSpace one({GridAxis{"x", {7.0}}});
  EXPECT_EQ(one.neighborhood(0, 0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(one.neighborhood(0, 5), (std::vector<std::size_t>{0}));
}

TEST(GridSpace, NearestSnapsPerAxis) {
  const GridSpace g = small_space();
  const std::size_t flat = g.nearest({2.4, 19.0});
  EXPECT_EQ(g.point(flat), (std::vector<double>{2.0, 20.0}));
}

// ---------------------------------------------------------------------------
// Lagrange

TEST(Lagrange, QuadraticWithLinearConstraint) {
  // min x^2 + y^2 s.t. x + y = 2  ->  x = y = 1, lambda = -2.
  ScalarField f = [](const Vector& v) { return v[0] * v[0] + v[1] * v[1]; };
  ScalarField g = [](const Vector& v) { return v[0] + v[1] - 2.0; };
  const LagrangeResult r = lagrange_stationary_point(f, {g}, {0.3, 0.9});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
  EXPECT_NEAR(r.lambda[0], -2.0, 1e-5);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(Lagrange, CircleConstraintMaxAndMin) {
  // Stationary points of x + y on x^2 + y^2 = 2 are (1,1) and (-1,-1); from
  // a start near (1,1) Newton lands on that one.
  ScalarField f = [](const Vector& v) { return v[0] + v[1]; };
  ScalarField g = [](const Vector& v) { return v[0] * v[0] + v[1] * v[1] - 2.0; };
  const LagrangeResult r = lagrange_stationary_point(f, {g}, {0.9, 1.1});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(std::fabs(r.x[0]), 1.0, 1e-5);
  EXPECT_NEAR(r.x[0], r.x[1], 1e-5);
}

TEST(Lagrange, GradientHelper) {
  ScalarField f = [](const Vector& v) { return v[0] * v[0] * v[1]; };
  const Vector grad = numeric_gradient(f, {2.0, 3.0});
  EXPECT_NEAR(grad[0], 12.0, 1e-5);
  EXPECT_NEAR(grad[1], 4.0, 1e-5);
}

}  // namespace
}  // namespace c2b
