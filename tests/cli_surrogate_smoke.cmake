# Smoke test for the surrogate-guided sweep: `c2b dse --surrogate` writes a
# journal, the stdout summary carries the surrogate block, and `c2b report`
# replays the journal into a post-mortem with the `== surrogate ==` section.
# Invoked by ctest with -DC2B_BIN=<c2b> -DWORK_DIR=<scratch dir>.

set(journal "${WORK_DIR}/surrogate_journal.jsonl")
file(REMOVE "${journal}")

execute_process(
  COMMAND "${C2B_BIN}" dse --workload stencil --surrogate --surrogate-band 0.3
          --surrogate-warmup 2 --journal-out "${journal}" --progress=0
  RESULT_VARIABLE dse_rc
  OUTPUT_VARIABLE dse_out
  ERROR_VARIABLE dse_err)
if(NOT dse_rc EQUAL 0)
  message(FATAL_ERROR "c2b dse --surrogate failed (${dse_rc}):\n${dse_out}\n${dse_err}")
endif()
string(FIND "${dse_out}" "surrogate" found)
if(found EQUAL -1)
  message(FATAL_ERROR "dse output missing the surrogate summary:\n${dse_out}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "journal file was not written: ${journal}")
endif()

execute_process(
  COMMAND "${C2B_BIN}" report --journal "${journal}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "c2b report failed (${report_rc}):\n${report_out}\n${report_err}")
endif()

foreach(needle
    "== run =="
    "== surrogate ==")
  string(FIND "${report_out}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "report output missing '${needle}':\n${report_out}")
  endif()
endforeach()

# The exhaustive path must NOT print surrogate stats: re-run without the
# flag and make sure the block stays absent (the knob defaults off).
execute_process(
  COMMAND "${C2B_BIN}" dse --workload stencil --no-surrogate --progress=0
  RESULT_VARIABLE off_rc
  OUTPUT_VARIABLE off_out
  ERROR_VARIABLE off_err)
if(NOT off_rc EQUAL 0)
  message(FATAL_ERROR "c2b dse --no-surrogate failed (${off_rc}):\n${off_out}\n${off_err}")
endif()
string(FIND "${off_out}" "surrogate" found)
if(NOT found EQUAL -1)
  message(FATAL_ERROR "--no-surrogate run still printed surrogate stats:\n${off_out}")
endif()

message(STATUS "surrogate smoke OK")
