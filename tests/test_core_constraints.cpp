// Property suite for the declarative constraint set (c2b/core/constraints.h)
// and the Pareto-frontier DSE mode: demand models are non-negative and
// monotone where promised, the area member alone reproduces the historical
// single-budget filter exactly, and a swept frontier is genuinely
// non-dominated and complete.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/check/property.h"
#include "c2b/core/constraints.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

DesignPoint gen_design_point(Rng& rng) {
  return DesignPoint{.n_cores = static_cast<double>(1 + rng.uniform_below(16)),
                     .a0 = rng.uniform(0.05, 4.0),
                     .a1 = rng.uniform(0.05, 4.0),
                     .a2 = rng.uniform(0.05, 4.0)};
}

PowerModel gen_power_model(Rng& rng) {
  PowerModel model;
  model.core_dynamic_base = rng.uniform(0.0, 3.0);
  model.core_area_exponent = rng.uniform(0.0, 1.5);
  model.l1_dynamic_per_area = rng.uniform(0.0, 1.0);
  model.l2_dynamic_per_area = rng.uniform(0.0, 1.0);
  model.leakage_per_area = rng.uniform(0.0, 0.5);
  model.uncore_power = rng.uniform(0.0, 2.0);
  return model;
}

BandwidthModel gen_bandwidth_model(Rng& rng) {
  BandwidthModel model;
  model.accesses_per_kilocycle_per_core = rng.uniform(0.0, 1000.0);
  model.base_miss_rate = rng.uniform(0.0, 1.0);
  model.capacity_exponent = rng.uniform(0.0, 1.5);
  return model;
}

NocCapacityModel gen_noc_model(Rng& rng) {
  NocCapacityModel model;
  model.accesses_per_kilocycle_per_core = rng.uniform(0.0, 1000.0);
  model.base_l1_miss_rate = rng.uniform(0.0, 1.0);
  model.capacity_exponent = rng.uniform(0.0, 1.5);
  model.bisection_fraction = rng.uniform(0.0, 1.0);
  return model;
}

struct ModelCase {
  PowerModel power;
  BandwidthModel bandwidth;
  NocCapacityModel noc;
  DesignPoint d;
  double shared_area = 0.0;
};

ModelCase gen_model_case(Rng& rng) {
  ModelCase c;
  c.power = gen_power_model(rng);
  c.bandwidth = gen_bandwidth_model(rng);
  c.noc = gen_noc_model(rng);
  c.d = gen_design_point(rng);
  c.shared_area = rng.uniform(0.0, 16.0);
  return c;
}

std::string print_model_case(const ModelCase& c) {
  return "n=" + std::to_string(c.d.n_cores) + " a0=" + std::to_string(c.d.a0) +
         " a1=" + std::to_string(c.d.a1) + " a2=" + std::to_string(c.d.a2) +
         " shared=" + std::to_string(c.shared_area);
}

TEST(CoreConstraints, EveryDemandEvaluationIsNonNegative) {
  check::Property<ModelCase> p;
  p.name = "constraint_evaluate_non_negative";
  p.generate = gen_model_case;
  p.print = print_model_case;
  p.holds = [](const ModelCase& c) -> std::optional<std::string> {
    ChipConstraints chip;
    chip.shared_area = c.shared_area;
    const Constraint members[] = {
        make_area_constraint(chip),
        make_power_constraint(c.power, c.shared_area, 10.0),
        make_bandwidth_constraint(c.bandwidth, 10.0),
        make_noc_constraint(c.noc, 10.0),
    };
    for (const Constraint& constraint : members) {
      const double demand = constraint.evaluate(c.d);
      if (!(demand >= 0.0) || !std::isfinite(demand))
        return constraint.name + " demand " + std::to_string(demand);
    }
    return std::nullopt;
  };
  const check::CheckResult result = check::check(p, check::options_from_env({}));
  EXPECT_TRUE(result.passed) << result.summary();
}

TEST(CoreConstraints, PowerDemandIsMonotoneInCoreCount) {
  check::Property<ModelCase> p;
  p.name = "power_monotone_in_n";
  p.generate = gen_model_case;
  p.print = print_model_case;
  p.holds = [](const ModelCase& c) -> std::optional<std::string> {
    DesignPoint more = c.d;
    more.n_cores = c.d.n_cores + 1.0;
    const double at_n = c.power.total(c.d, c.shared_area);
    const double at_n1 = c.power.total(more, c.shared_area);
    if (at_n1 < at_n)
      return "power shrank when a core was added: " + std::to_string(at_n) + " -> " +
             std::to_string(at_n1);
    return std::nullopt;
  };
  const check::CheckResult result = check::check(p, check::options_from_env({}));
  EXPECT_TRUE(result.passed) << result.summary();
}

TEST(CoreConstraints, BandwidthDemandIsMonotoneInMissRateAndCacheArea) {
  check::Property<ModelCase> p;
  p.name = "bandwidth_monotone";
  p.generate = gen_model_case;
  p.print = print_model_case;
  p.holds = [](const ModelCase& c) -> std::optional<std::string> {
    // Monotone in the miss rate at a fixed design...
    const double lo = c.bandwidth.demand_at_miss_rate(c.d, 0.25);
    const double hi = c.bandwidth.demand_at_miss_rate(c.d, 0.75);
    if (hi < lo)
      return "demand shrank as the miss rate grew: " + std::to_string(lo) + " -> " +
             std::to_string(hi);
    // ...and non-increasing in L2 area (bigger cache, fewer misses).
    DesignPoint bigger = c.d;
    bigger.a2 = c.d.a2 * 2.0;
    if (c.bandwidth.demand(bigger) > c.bandwidth.demand(c.d))
      return "demand grew when the L2 doubled";
    return std::nullopt;
  };
  const check::CheckResult result = check::check(p, check::options_from_env({}));
  EXPECT_TRUE(result.passed) << result.summary();
}

// --- regression guard: area-only contexts behave exactly as before --------

struct GridCase {
  DseContext context;
  std::vector<double> point;
};

TEST(CoreConstraints, AreaOnlyConstraintSetReproducesLegacyFilterExactly) {
  check::Property<GridCase> p;
  p.name = "area_only_regression_guard";
  p.generate = [](Rng& rng) {
    GridCase c;
    c.context.chip.total_area = rng.uniform(2.0, 64.0);
    c.context.chip.shared_area = rng.uniform(0.0, 4.0);
    const double issue = static_cast<double>(1 + rng.uniform_below(8));
    c.point = {rng.uniform(0.05, 4.0),
               rng.uniform(0.05, 4.0),
               rng.uniform(0.05, 4.0),
               static_cast<double>(1 + rng.uniform_below(8)),
               issue,
               issue + static_cast<double>(rng.uniform_below(64))};
    return c;
  };
  p.holds = [](const GridCase& c) -> std::optional<std::string> {
    // The historical inline filter, verbatim.
    const double n = c.point[kAxisN];
    const double per_core = c.point[kAxisA0] + c.point[kAxisA1] + c.point[kAxisA2];
    const bool legacy = c.point[kAxisRob] >= c.point[kAxisIssue] &&
                        n * per_core + c.context.chip.shared_area <=
                            c.context.chip.total_area + 1e-9;
    if (design_feasible(c.context, c.point) != legacy)
      return "constraint-set verdict diverged from the legacy area filter";
    const ConstraintSet set = design_constraints(c.context);
    if (set.size() != 1)
      return "infinite budgets assembled " + std::to_string(set.size()) + " constraints";
    return std::nullopt;
  };
  const check::CheckResult result = check::check(p, check::options_from_env({}));
  EXPECT_TRUE(result.passed) << result.summary();
}

// --- frontier invariants on a real constrained sweep ----------------------

class ExecEnvGuard {
 public:
  ExecEnvGuard() = default;
  ~ExecEnvGuard() {
    exec::set_thread_count(0);
    exec::SimCache::global().set_enabled(true);
    exec::SimCache::global().clear();
  }
};

DseContext constrained_tiny_context() {
  DseContext context;
  sim::SystemConfig base;
  base.core.issue_width = 4;
  base.core.rob_size = 128;
  base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                .associativity = 4};
  base.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                .associativity = 8};
  context.base = base;
  context.workload = make_stencil_workload(96);
  context.instructions0 = 20000;
  context.per_core_cap = 10000;
  context.chip.total_area = 9.0;
  context.chip.shared_area = 1.0;
  // Bisects the tiny grid: default-model power demands there span ~2.0
  // (n=1, minimal areas) to ~6.65 (n=2, maximal areas).
  context.power_budget = 4.0;
  return context;
}

GridSpace tiny_space() {
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  return make_design_space(axes);
}

bool dominates(double t1, double p1, double a1, double t2, double p2, double a2) {
  if (t1 > t2 || p1 > p2 || a1 > a2) return false;
  return t1 < t2 || p1 < p2 || a1 < a2;
}

TEST(CoreConstraints, FrontierIsNonDominatedAndComplete) {
  ExecEnvGuard guard;
  exec::set_thread_count(2);
  exec::SimCache::global().set_enabled(true);
  exec::SimCache::global().clear();

  const DseContext context = constrained_tiny_context();
  const GridSpace space = tiny_space();
  const ConstraintSet set = design_constraints(context);
  ASSERT_EQ(set.size(), 2u);  // area + power

  const ParetoDseResult pareto = run_pareto_dse(context, space);
  ASSERT_FALSE(pareto.frontier.empty());

  // Every frontier member is a feasible grid point satisfying the full set.
  for (const FrontierPoint& fp : pareto.frontier) {
    EXPECT_EQ(space.point(fp.flat_index), fp.point);
    EXPECT_TRUE(design_feasible(context, fp.point));
    EXPECT_TRUE(set.feasible(design_point_of(fp.point)));
  }

  // No frontier member dominates another.
  for (std::size_t i = 0; i < pareto.frontier.size(); ++i)
    for (std::size_t j = 0; j < pareto.frontier.size(); ++j) {
      if (i == j) continue;
      const FrontierPoint& a = pareto.frontier[i];
      const FrontierPoint& b = pareto.frontier[j];
      EXPECT_FALSE(dominates(a.time, a.power, a.area, b.time, b.power, b.area))
          << "frontier member " << i << " dominates member " << j;
    }

  // Completeness: every feasible grid point is on the frontier or dominated
  // by a frontier member. The plain DSE run reuses the sim cache the Pareto
  // run populated, so its times are the identical coordinates.
  const FullDseResult full = run_full_dse(context, space);
  EXPECT_EQ(full.feasible_count, pareto.feasible_count);
  space.for_each([&](std::size_t flat, const std::vector<double>& point) {
    if (!design_feasible(context, point)) return;
    const DesignPoint d = design_point_of(point);
    const double time = full.times[flat];
    const double power = context.cost.power.total(d, context.chip.shared_area);
    const double area = d.n_cores * (d.a0 + d.a1 + d.a2) + context.chip.shared_area;
    bool on_or_dominated = false;
    for (const FrontierPoint& fp : pareto.frontier) {
      if (fp.flat_index == flat ||
          dominates(fp.time, fp.power, fp.area, time, power, area)) {
        on_or_dominated = true;
        break;
      }
    }
    EXPECT_TRUE(on_or_dominated) << "feasible point " << flat
                                 << " neither on nor dominated by the frontier";
  });
}

}  // namespace
}  // namespace c2b
