#include "c2b/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "c2b/trace/generators.h"

namespace c2b {
namespace {

Trace sample_trace() {
  PointerChaseGenerator chase(64, 1, 5);
  Trace t = chase.generate(500);
  t.name = "sample/chase";
  return t;
}

TEST(TraceIo, StreamRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const Trace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].kind, original.records[i].kind);
    EXPECT_EQ(loaded.records[i].address, original.records[i].address);
    EXPECT_EQ(loaded.records[i].depends_on_prev_mem, original.records[i].depends_on_prev_mem);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/c2b_trace_io_test.bin";
  save_trace(path, original);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.records.size(), original.records.size());
  EXPECT_EQ(loaded.name, original.name);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace empty;
  empty.name = "empty";
  std::stringstream buffer;
  write_trace(buffer, empty);
  const Trace loaded = read_trace(buffer);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.name, "empty");
}

TEST(TraceIo, BadMagicRejected) {
  std::stringstream buffer("NOPE not a trace");
  EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, TruncationRejected) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)read_trace(truncated), std::runtime_error);
}

TEST(TraceIo, CorruptKindRejected) {
  Trace one;
  one.records.push_back({.kind = InstrKind::kLoad, .address = 64});
  std::stringstream buffer;
  write_trace(buffer, one);
  std::string bytes = buffer.str();
  // The record kind byte sits right after the header (magic 4 + version 4 +
  // count 8 + name length 4 + empty name).
  bytes[4 + 4 + 8 + 4] = 7;
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_trace(corrupted), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/trace.bin"), std::runtime_error);
}

}  // namespace
}  // namespace c2b
