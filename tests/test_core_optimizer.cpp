#include "c2b/core/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace c2b {
namespace {

AppProfile app_with_g(ScalingFunction g, double f_mem = 0.3) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = f_mem;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 16;
  app.g = std::move(g);
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile small_chip() {
  MachineProfile machine;
  machine.chip.total_area = 64.0;
  machine.chip.shared_area = 8.0;
  return machine;
}

TEST(Optimizer, CaseSplitFollowsG) {
  {
    const C2BoundOptimizer opt(
        C2BoundModel(app_with_g(ScalingFunction::power(1.5)), small_chip()));
    EXPECT_EQ(opt.classify(), OptimizationCase::kMaximizeThroughput);
  }
  {
    const C2BoundOptimizer opt(C2BoundModel(app_with_g(ScalingFunction::fixed()), small_chip()));
    EXPECT_EQ(opt.classify(), OptimizationCase::kMinimizeTime);
  }
  {
    const C2BoundOptimizer opt(
        C2BoundModel(app_with_g(ScalingFunction::power(0.5)), small_chip()));
    EXPECT_EQ(opt.classify(), OptimizationCase::kMinimizeTime);
  }
}

TEST(Optimizer, BestAllocationRespectsAreaConstraint) {
  const C2BoundOptimizer opt(
      C2BoundModel(app_with_g(ScalingFunction::power(1.5)), small_chip()));
  for (const long long n : {1, 2, 4, 8}) {
    const Evaluation e = opt.best_allocation(n);
    EXPECT_TRUE(small_chip().chip.feasible(e.design, 1e-4)) << "n=" << n;
    EXPECT_NEAR(small_chip().chip.area_residual(e.design), 0.0, 1e-4) << "n=" << n;
  }
}

TEST(Optimizer, BestAllocationBeatsNaiveSplits) {
  const C2BoundModel model(app_with_g(ScalingFunction::power(1.5)), small_chip());
  const C2BoundOptimizer opt(model);
  const long long n = 4;
  const Evaluation best = opt.best_allocation(n);
  const double budget = small_chip().chip.per_core_budget(static_cast<double>(n));
  // Any fixed split must not beat the optimizer's choice.
  for (const double l1_frac : {0.1, 0.25, 0.4}) {
    for (const double l2_frac : {0.2, 0.4, 0.6}) {
      if (l1_frac + l2_frac >= 0.95) continue;
      const DesignPoint d{.n_cores = static_cast<double>(n),
                          .a0 = budget * (1.0 - l1_frac - l2_frac),
                          .a1 = budget * l1_frac,
                          .a2 = budget * l2_frac};
      EXPECT_LE(best.execution_time, model.evaluate(d).execution_time * (1.0 + 1e-6));
    }
  }
}

TEST(Optimizer, FixedSizeWorkloadPrefersFewCores) {
  // Amdahl regime with a large f_seq: beyond a few cores the per-core area
  // loss outweighs parallel gain, so the optimizer picks a small N.
  AppProfile app = app_with_g(ScalingFunction::fixed(), 0.5);
  app.f_seq = 0.4;
  const C2BoundOptimizer opt(C2BoundModel(app, small_chip()));
  const OptimalDesign result = opt.optimize();
  EXPECT_EQ(result.opt_case, OptimizationCase::kMinimizeTime);
  // "Few" relative to the ~100-core capacity of this chip: Amdahl caps the
  // parallel gain at 1/f_seq = 2.5x, so only cache-pressure relief justifies
  // going past a handful of cores.
  EXPECT_LE(result.best.design.n_cores, 12.0);
  EXPECT_GE(result.best.design.n_cores, 1.0);
}

TEST(Optimizer, SuperlinearWorkloadUsesManyCores) {
  const C2BoundOptimizer opt(
      C2BoundModel(app_with_g(ScalingFunction::power(1.5)), small_chip()));
  const OptimalDesign result = opt.optimize();
  EXPECT_EQ(result.opt_case, OptimizationCase::kMaximizeThroughput);
  EXPECT_GT(result.best.design.n_cores, 4.0);
}

TEST(Optimizer, PerCoreCurveCoversScannedRange) {
  OptimizerOptions options;
  options.n_max = 12;
  const C2BoundOptimizer opt(
      C2BoundModel(app_with_g(ScalingFunction::power(1.5)), small_chip()), options);
  const OptimalDesign result = opt.optimize();
  EXPECT_EQ(result.per_core_count.size(), 12u);
  for (std::size_t i = 0; i < result.per_core_count.size(); ++i)
    EXPECT_DOUBLE_EQ(result.per_core_count[i].design.n_cores, static_cast<double>(i + 1));
  // The winner is the throughput argmax of the frontier.
  double best_tp = 0.0;
  for (const Evaluation& e : result.per_core_count) best_tp = std::max(best_tp, e.throughput);
  EXPECT_DOUBLE_EQ(result.best.throughput, best_tp);
}

TEST(Optimizer, MatchesBruteForceOnCoarseGrid) {
  // Exhaustive (a1, a2) scan at fixed N must not beat the optimizer by more
  // than a grid-resolution margin.
  const C2BoundModel model(app_with_g(ScalingFunction::linear()), small_chip());
  const C2BoundOptimizer opt(model);
  const long long n = 4;
  const double budget = small_chip().chip.per_core_budget(4.0);
  double brute_best = 1e300;
  for (double a1 = 0.05; a1 < budget; a1 += budget / 200.0) {
    for (double a2 = 0.05; a2 + a1 < budget - 0.05; a2 += budget / 200.0) {
      const DesignPoint d{.n_cores = 4.0, .a0 = budget - a1 - a2, .a1 = a1, .a2 = a2};
      if (d.a0 < small_chip().chip.min_core_area) continue;
      brute_best = std::min(brute_best, model.evaluate(d).execution_time);
    }
  }
  const Evaluation e = opt.best_allocation(n);
  EXPECT_LE(e.execution_time, brute_best * 1.01);
}

TEST(Optimizer, HigherConcurrencyNeverHurtsThroughput) {
  AppProfile low_c = app_with_g(ScalingFunction::power(1.5), 0.6);
  AppProfile high_c = low_c;
  high_c.hit_concurrency = 4.0;
  high_c.miss_concurrency = 8.0;
  const OptimalDesign low = C2BoundOptimizer(C2BoundModel(low_c, small_chip())).optimize();
  const OptimalDesign high = C2BoundOptimizer(C2BoundModel(high_c, small_chip())).optimize();
  EXPECT_GE(high.best.throughput, low.best.throughput);
}

TEST(Optimizer, LambdaIsAreaPrice) {
  const C2BoundOptimizer opt(
      C2BoundModel(app_with_g(ScalingFunction::fixed()), small_chip()));
  const OptimalDesign result = opt.optimize();
  if (result.lagrange_converged) {
    // At a constrained time-minimum, extra area must not increase time:
    // dT/dA = -lambda * N <= 0 => lambda >= 0 ... with L = T + l*(area-A),
    // stationarity gives lambda = -dT/d(area) >= 0 in the paper's form.
    EXPECT_GE(result.lambda, -1e-6);
  }
  SUCCEED();  // convergence of the polish is best-effort by design
}

TEST(Optimizer, InfeasibleRangeThrows) {
  OptimizerOptions options;
  options.n_min = 1000000;  // cannot fit
  const C2BoundOptimizer opt(
      C2BoundModel(app_with_g(ScalingFunction::linear()), small_chip()), options);
  EXPECT_THROW((void)opt.optimize(), std::invalid_argument);
}

}  // namespace
}  // namespace c2b
