# Smoke test for `c2b serve`: the actual flow lives in cli_serve_smoke.sh
# (a daemon must run in the background, which execute_process cannot do
# directly). Invoked by ctest with -DC2B_BIN=<c2b> -DWORK_DIR=<scratch>
# -DSCRIPT_DIR=<tests source dir>.

execute_process(
  COMMAND sh "${SCRIPT_DIR}/cli_serve_smoke.sh" "${C2B_BIN}" "${WORK_DIR}"
  RESULT_VARIABLE smoke_rc
  OUTPUT_VARIABLE smoke_out
  ERROR_VARIABLE smoke_err)
if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "serve smoke failed (${smoke_rc}):\n${smoke_out}\n${smoke_err}")
endif()

string(FIND "${smoke_out}" "serve smoke OK" found)
if(found EQUAL -1)
  message(FATAL_ERROR "serve smoke did not report success:\n${smoke_out}\n${smoke_err}")
endif()
message(STATUS "serve smoke OK")
