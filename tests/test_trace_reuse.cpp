#include "c2b/trace/reuse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <list>
#include <unordered_map>

#include "c2b/common/rng.h"
#include "c2b/trace/generators.h"

namespace c2b {
namespace {

/// Naive O(n^2) LRU-stack reference implementation.
class NaiveStack {
 public:
  std::uint64_t access(std::uint64_t line) {
    std::uint64_t depth = 0;
    for (auto it = stack_.begin(); it != stack_.end(); ++it, ++depth) {
      if (*it == line) {
        stack_.erase(it);
        stack_.push_front(line);
        return depth;
      }
    }
    stack_.push_front(line);
    return kColdMiss;
  }

 private:
  std::list<std::uint64_t> stack_;
};

TEST(StackDistance, SimpleSequence) {
  StackDistanceAnalyzer a(64);
  EXPECT_EQ(a.access(0), kColdMiss);       // A
  EXPECT_EQ(a.access(64), kColdMiss);      // B
  EXPECT_EQ(a.access(0), 1u);              // A again: {B} between
  EXPECT_EQ(a.access(0), 0u);              // immediate reuse
  EXPECT_EQ(a.access(64), 1u);             // B: {A} between
  EXPECT_EQ(a.cold_miss_count(), 2u);
  EXPECT_EQ(a.access_count(), 5u);
}

TEST(StackDistance, SubLineAddressesShareALine) {
  StackDistanceAnalyzer a(64);
  EXPECT_EQ(a.access(0), kColdMiss);
  EXPECT_EQ(a.access(63), 0u);  // same line
  EXPECT_EQ(a.access(64), kColdMiss);
}

TEST(StackDistance, MatchesNaiveReferenceOnRandomTraces) {
  Rng rng(31);
  StackDistanceAnalyzer fast(64);
  NaiveStack naive;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t line = rng.zipf(200, 0.8);
    EXPECT_EQ(fast.access(line * 64), naive.access(line)) << "at access " << i;
  }
}

TEST(StackDistance, MissRatioCurveIsMonotone) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 4096;
  p.zipf_exponent = 0.9;
  p.f_mem = 1.0;
  p.seed = 12;
  ZipfStreamGenerator g(p);
  StackDistanceAnalyzer a(64);
  a.consume(g.generate(60000));
  const auto curve = a.miss_ratio_curve();
  ASSERT_GE(curve.size(), 3u);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].second, curve[i - 1].second + 1e-12) << "capacity " << curve[i].first;
  // Miss ratio bounded by [cold/total, 1].
  EXPECT_LE(curve.back().second, 1.0);
  EXPECT_GE(curve.back().second,
            static_cast<double>(a.cold_miss_count()) / static_cast<double>(a.access_count()) -
                1e-12);
}

TEST(StackDistance, SequentialStreamMissesEverywhere) {
  StackDistanceAnalyzer a(64);
  for (std::uint64_t i = 0; i < 1000; ++i) a.access(i * 64);
  // Pure streaming: every access cold -> miss ratio 1 at any capacity.
  EXPECT_DOUBLE_EQ(a.miss_ratio_for(16), 1.0);
  EXPECT_DOUBLE_EQ(a.miss_ratio_for(1 << 20), 1.0);
}

TEST(StackDistance, TinyLoopFitsInTinyCache) {
  StackDistanceAnalyzer a(64);
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint64_t line = 0; line < 4; ++line) a.access(line * 64);
  // Distances are all 3 after warmup: a 4-line cache captures everything.
  EXPECT_LT(a.miss_ratio_for(4), 0.05);
  EXPECT_GT(a.miss_ratio_for(2), 0.9);
}

TEST(StackDistance, HistogramBucketsArePow2) {
  StackDistanceAnalyzer a(64);
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t line = 0; line < 10; ++line) a.access(line * 64);
  const auto& h = a.distance_histogram_pow2();
  std::uint64_t total = 0;
  for (const auto count : h) total += count;
  EXPECT_EQ(total, 20u);  // 30 accesses - 10 cold
}

TEST(PowerLawFit, RecoversKnownParameters) {
  // Construct a synthetic curve MR(S) = 0.1 * S^-0.5.
  std::vector<std::pair<std::uint64_t, double>> curve;
  for (std::uint64_t s = 2; s <= 1 << 16; s *= 2)
    curve.emplace_back(s, 0.1 * std::pow(static_cast<double>(s), -0.5));
  const PowerLawFit fit = fit_miss_power_law(curve);
  EXPECT_NEAR(fit.alpha, 0.1, 0.01);
  EXPECT_NEAR(fit.beta, 0.5, 0.01);
}

TEST(PowerLawFit, DegenerateCurveFallsBackGracefully) {
  const PowerLawFit flat = fit_miss_power_law({{1, 1.0}, {2, 1.0}, {4, 1.0}});
  EXPECT_GE(flat.beta, 0.0);  // no throw, sane defaults
  const PowerLawFit empty = fit_miss_power_law({});
  EXPECT_GT(empty.alpha, 0.0);
}

TEST(PowerLawFit, ZipfWorkloadProducesDecreasingFit) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 13;
  p.zipf_exponent = 0.8;
  p.f_mem = 1.0;
  p.seed = 8;
  ZipfStreamGenerator g(p);
  StackDistanceAnalyzer a(64);
  a.consume(g.generate(80000));
  const PowerLawFit fit = fit_miss_power_law(a.miss_ratio_curve());
  EXPECT_GT(fit.beta, 0.05);  // capacity helps
  EXPECT_GT(fit.alpha, 0.0);
}

}  // namespace
}  // namespace c2b
