#include "c2b/sim/cache/prefetch.h"

#include <gtest/gtest.h>

#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace c2b::sim {
namespace {

// ---------------------------------------------------------------------------
// Engine unit behavior

TEST(Prefetcher, NoneNeverFires) {
  Prefetcher engine(PrefetcherConfig{.kind = PrefetchKind::kNone});
  for (std::uint64_t line = 0; line < 32; ++line) EXPECT_TRUE(engine.on_miss(line).empty());
  EXPECT_EQ(engine.triggers(), 0u);
}

TEST(Prefetcher, NextLineFetchesAhead) {
  Prefetcher engine(PrefetcherConfig{.kind = PrefetchKind::kNextLine, .degree = 3});
  const auto out = engine.on_miss(100);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{101, 102, 103}));
}

TEST(Prefetcher, StrideLocksOntoUnitStream) {
  Prefetcher engine(PrefetcherConfig{.kind = PrefetchKind::kStride, .degree = 2});
  EXPECT_TRUE(engine.on_miss(10).empty());  // allocate
  EXPECT_TRUE(engine.on_miss(11).empty());  // stride 1, confidence 1
  const auto out = engine.on_miss(12);      // confidence 2 -> fire
  EXPECT_EQ(out, (std::vector<std::uint64_t>{13, 14}));
}

TEST(Prefetcher, StrideDetectsLargeAndNegativeDeltas) {
  Prefetcher up(PrefetcherConfig{.kind = PrefetchKind::kStride, .degree = 1});
  up.on_miss(0);
  up.on_miss(8);
  EXPECT_EQ(up.on_miss(16), (std::vector<std::uint64_t>{24}));

  Prefetcher down(PrefetcherConfig{.kind = PrefetchKind::kStride, .degree = 1});
  down.on_miss(100);
  down.on_miss(96);
  EXPECT_EQ(down.on_miss(92), (std::vector<std::uint64_t>{88}));
}

TEST(Prefetcher, StrideIgnoresRandomStream) {
  Prefetcher engine(PrefetcherConfig{.kind = PrefetchKind::kStride, .degree = 2});
  // Deltas never repeat: the engine must not fire.
  std::size_t fired = 0;
  std::uint64_t line = 1000;
  const std::uint64_t deltas[] = {3, 17, 5, 29, 11, 41, 7, 53};
  for (const std::uint64_t d : deltas) {
    line += d;
    fired += engine.on_miss(line).empty() ? 0 : 1;
  }
  EXPECT_EQ(fired, 0u);
}

TEST(Prefetcher, TracksMultipleStreams) {
  PrefetcherConfig config{.kind = PrefetchKind::kStride, .degree = 1, .stream_table = 4};
  Prefetcher engine(config);
  // Two interleaved unit-stride streams far apart.
  engine.on_miss(0);
  engine.on_miss(1'000'000);
  engine.on_miss(1);
  engine.on_miss(1'000'001);
  EXPECT_EQ(engine.on_miss(2), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(engine.on_miss(1'000'002), (std::vector<std::uint64_t>{1'000'003}));
}

TEST(Prefetcher, ValidatesConfig) {
  EXPECT_THROW(Prefetcher(PrefetcherConfig{.kind = PrefetchKind::kNextLine, .degree = 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// System-level effect

SystemConfig system_with_prefetch(PrefetchKind kind) {
  SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 8 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  config.hierarchy.l1_prefetch.kind = kind;
  config.hierarchy.l1_prefetch.degree = 2;
  return config;
}

/// Latency-bound dependent strided walk: every load waits on the previous
/// one and strides one line ahead — zero MLP, so each L1 miss pays the full
/// L2 round trip serially. The stride prefetcher's best case.
Trace dependent_strided_walk(std::uint64_t lines, std::uint64_t n) {
  Trace t;
  t.name = "dep_stride";
  for (std::uint64_t i = 0; i < n; ++i) {
    t.records.push_back({.kind = InstrKind::kLoad,
                         .depends_on_prev_mem = true,
                         .address = (i % lines) * 64});
    t.records.push_back({.kind = InstrKind::kCompute});
  }
  return t;
}

TEST(PrefetchSystem, LatencyBoundStreamBenefits) {
  // Working set fits L2 (latency-bound, not bandwidth-bound).
  const Trace trace = dependent_strided_walk(1 << 12, 60000);
  const SystemResult off = simulate_single_core(system_with_prefetch(PrefetchKind::kNone), trace);
  const SystemResult on =
      simulate_single_core(system_with_prefetch(PrefetchKind::kStride), trace);
  EXPECT_LT(on.cores[0].cpi, off.cores[0].cpi * 0.8);
  EXPECT_GT(on.hierarchy.prefetches_issued, 100u);
  EXPECT_GT(on.hierarchy.prefetch_accuracy, 0.5);
  EXPECT_LT(on.hierarchy.l1_miss_ratio, off.hierarchy.l1_miss_ratio);
}

TEST(PrefetchSystem, BandwidthBoundStreamSeesReducedMissesButNoSpeedup) {
  // Reduction over an L2-sized set is DRAM-bandwidth-bound: prefetching
  // cannot add bandwidth, so misses drop but CPI must not collapse or blow
  // up (textbook behavior; the ablation bench reports both numbers).
  const Trace trace = ReductionGenerator(1 << 16).generate(120000);
  const SystemResult off = simulate_single_core(system_with_prefetch(PrefetchKind::kNone), trace);
  const SystemResult on =
      simulate_single_core(system_with_prefetch(PrefetchKind::kStride), trace);
  EXPECT_LT(on.hierarchy.l1_miss_ratio, off.hierarchy.l1_miss_ratio);
  EXPECT_GT(on.hierarchy.prefetch_accuracy, 0.9);
  EXPECT_LT(on.cores[0].cpi, off.cores[0].cpi * 1.3);
}

TEST(PrefetchSystem, RandomWorkloadGainsNothing) {
  const Trace trace = GupsGenerator(1 << 15, 9).generate(60000);
  const SystemResult off = simulate_single_core(system_with_prefetch(PrefetchKind::kNone), trace);
  const SystemResult on =
      simulate_single_core(system_with_prefetch(PrefetchKind::kStride), trace);
  // Stride detection must not fire on random traffic, so the cost is ~zero.
  EXPECT_LT(on.hierarchy.prefetches_issued, 2000u);
  EXPECT_LT(on.cores[0].cpi, off.cores[0].cpi * 1.1);
}

TEST(PrefetchSystem, NextLineFiresIndiscriminately) {
  const Trace trace = GupsGenerator(1 << 15, 9).generate(60000);
  const SystemResult on =
      simulate_single_core(system_with_prefetch(PrefetchKind::kNextLine), trace);
  EXPECT_GT(on.hierarchy.prefetches_issued, 5000u);
  EXPECT_LT(on.hierarchy.prefetch_accuracy, 0.4);  // mostly pollution on GUPS
}

TEST(PrefetchSystem, AccuracyIsBounded) {
  const Trace trace = StencilGenerator(192).generate(100000);
  const SystemResult on =
      simulate_single_core(system_with_prefetch(PrefetchKind::kStride), trace);
  EXPECT_LE(on.hierarchy.prefetch_accuracy, 1.0);
  EXPECT_GE(on.hierarchy.prefetch_accuracy, 0.0);
  EXPECT_LE(on.hierarchy.prefetch_useful_hits, on.hierarchy.prefetches_issued);
}

}  // namespace
}  // namespace c2b::sim
