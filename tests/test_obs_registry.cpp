#include "c2b/obs/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "c2b/obs/export.h"
#include "c2b/obs/obs.h"

namespace c2b::obs {
namespace {

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter& counter = Registry::global().counter("test.registry.concurrent");
  counter.reset();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsCounter, MacroHitsTheSameSlot) {
  Counter& counter = Registry::global().counter("test.registry.macro");
  counter.reset();
  const std::uint64_t before = counter.value();
  C2B_COUNTER_INC("test.registry.macro");
  C2B_COUNTER_ADD("test.registry.macro", 4);
  EXPECT_EQ(counter.value(), before + 5);
}

TEST(ObsGauge, LastWriteWins) {
  Gauge& gauge = Registry::global().gauge("test.registry.gauge");
  gauge.set(1.5);
  gauge.set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST(ObsHistogram, BucketsAndMoments) {
  ConcurrentHistogram h(0.0, 10.0, 10);
  h.record(0.5);   // bin 0
  h.record(3.5);   // bin 3
  h.record(9.99);  // bin 9
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_NEAR(h.mean(), (0.5 + 3.5 + 9.99) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.99);
  EXPECT_GT(h.stddev(), 0.0);
}

TEST(ObsHistogram, OutOfRangeSamplesClampToEdgeBins) {
  ConcurrentHistogram h(0.0, 8.0, 8);
  h.record(-5.0);    // below lo -> bin 0
  h.record(100.0);   // above hi -> last bin
  h.record(8.0);     // == hi -> last bin (half-open ranges)
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(7), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);  // moments keep the raw values
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCount) {
  ConcurrentHistogram h(0.0, 1.0, 4);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>((t + i) % 4) / 4.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) bucket_total += h.bin_count(b);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsHistogram, PercentileTracksExactQuantiles) {
  // Uniform fill: interpolation inside a bucket is exact, so the histogram
  // percentile must match the true quantile of the sample set.
  ConcurrentHistogram h(0.0, 100.0, 100);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(i) / 10.0;  // 0.0 .. 99.9
    h.record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  const auto exact = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    return values[lo] + (pos - lo) * (values[std::min(lo + 1, values.size() - 1)] - values[lo]);
  };
  // Error bound: one bucket width (1.0).
  EXPECT_NEAR(h.percentile(0.50), exact(0.50), 1.0);
  EXPECT_NEAR(h.percentile(0.90), exact(0.90), 1.0);
  EXPECT_NEAR(h.percentile(0.99), exact(0.99), 1.0);
}

TEST(ObsHistogram, PercentileUnderBinEdgeSkew) {
  // Adversarial shape: a big spike exactly on a bin edge plus a thin tail.
  // The estimate may smear across the spike's bucket but never by more than
  // one bucket width, and tail percentiles must land in the tail.
  ConcurrentHistogram h(0.0, 10.0, 10);
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) {
    h.record(3.0);  // spike on the bin 3 edge
    values.push_back(3.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double v = 9.0 + static_cast<double>(i) / 100.0;
    h.record(v);
    values.push_back(v);
  }
  EXPECT_NEAR(h.percentile(0.50), 3.0, 1.0);  // within the spike's bucket
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p99, 9.0);
  EXPECT_LE(p99, 9.99);
}

TEST(ObsHistogram, PercentileClampsToObservedRange) {
  // Out-of-range samples pile into the edge bins; clamping keeps the
  // estimate inside [min, max] instead of reporting bucket boundaries.
  ConcurrentHistogram h(0.0, 10.0, 10);
  h.record(-50.0);
  h.record(200.0);
  EXPECT_GE(h.percentile(0.0), -50.0);
  EXPECT_LE(h.percentile(1.0), 200.0);
  EXPECT_GE(h.percentile(1.0), 10.0);  // last bucket alone would cap at 10

  ConcurrentHistogram empty(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  ConcurrentHistogram single(0.0, 10.0, 10);
  single.record(4.5);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 4.5);
  EXPECT_DOUBLE_EQ(single.percentile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(single.percentile(1.0), 4.5);
}

TEST(ObsHistogram, ResetClears) {
  ConcurrentHistogram h(0.0, 1.0, 2);
  h.record(0.25);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsRegistry, FirstRegistrationFixesHistogramShape) {
  ConcurrentHistogram& first = Registry::global().histogram("test.registry.shape", 0.0, 4.0, 4);
  ConcurrentHistogram& again =
      Registry::global().histogram("test.registry.shape", -100.0, 100.0, 17);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bins(), 4u);
}

TEST(ObsRegistry, SnapshotCoversAllKinds) {
  Registry registry;  // private instance: deterministic content
  registry.counter("c").add(3);
  registry.gauge("g").set(1.25);
  registry.histogram("h", 0.0, 2.0, 2).record(1.5);

  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].name, "c");
  EXPECT_EQ(samples[0].count, 3u);
  EXPECT_EQ(samples[1].kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(samples[1].value, 1.25);
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  ASSERT_EQ(samples[2].buckets.size(), 2u);
  EXPECT_EQ(samples[2].buckets[1].second, 1u);
}

TEST(ObsRegistry, ResetValuesKeepsNames) {
  Registry registry;
  registry.counter("c").add(7);
  registry.histogram("h", 0.0, 1.0, 2).record(0.5);
  registry.reset_values();
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].count, 0u);
  EXPECT_EQ(samples[1].count, 0u);
}

TEST(ObsExport, JsonAndTableContainTheMetrics) {
  Registry registry;
  registry.counter("alpha").add(2);
  registry.gauge("beta").set(0.5);
  registry.histogram("gamma", 0.0, 1.0, 2).record(0.75);

  const std::string json = metrics_json(registry);
  EXPECT_NE(json.find("\"counters\":{\"alpha\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"beta\":0.5}"), std::string::npos);
  EXPECT_NE(json.find("\"gamma\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);

  const Table table = metrics_table(registry);
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(ObsExport, JsonSurfacesHistogramPercentiles) {
  Registry registry;
  ConcurrentHistogram& h = registry.histogram("delta", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));

  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].p50, 49.5, 1.0);
  EXPECT_NEAR(samples[0].p90, 89.1, 1.0);
  EXPECT_NEAR(samples[0].p99, 98.01, 1.0);

  const std::string json = metrics_json(registry);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsRuntime, DisableSkipsMacroUpdates) {
  Counter& counter = Registry::global().counter("test.registry.disable");
  counter.reset();
  set_enabled(false);
  C2B_COUNTER_INC("test.registry.disable");
  EXPECT_FALSE(C2B_OBS_ACTIVE());
  set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  C2B_COUNTER_INC("test.registry.disable");
  EXPECT_EQ(counter.value(), 1u);
}

}  // namespace
}  // namespace c2b::obs
