#include "c2b/ann/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "c2b/common/rng.h"
#include "c2b/exec/pool.h"

namespace c2b {
namespace {

TEST(FeatureScaler, MapsToMinusOneOne) {
  FeatureScaler scaler;
  scaler.fit({{0.0, 10.0}, {4.0, 20.0}});
  const Vector lo = scaler.transform({0.0, 10.0});
  EXPECT_DOUBLE_EQ(lo[0], -1.0);
  EXPECT_DOUBLE_EQ(lo[1], -1.0);
  const Vector hi = scaler.transform({4.0, 20.0});
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
  const Vector mid = scaler.transform({2.0, 15.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.0);
  EXPECT_DOUBLE_EQ(mid[1], 0.0);
}

TEST(FeatureScaler, ConstantFeatureMapsToZero) {
  FeatureScaler scaler;
  scaler.fit({{5.0}, {5.0}});
  EXPECT_DOUBLE_EQ(scaler.transform({5.0})[0], 0.0);
}

TEST(FeatureScaler, GuardsMisuse) {
  FeatureScaler scaler;
  EXPECT_THROW((void)scaler.transform({1.0}), std::invalid_argument);
  EXPECT_THROW(scaler.fit({}), std::invalid_argument);
}

MlpConfig small_config(std::size_t inputs) {
  MlpConfig config;
  config.layer_sizes = {inputs, 12, 1};
  config.learning_rate = 0.02;
  config.seed = 3;
  return config;
}

TEST(Mlp, LearnsLinearFunction) {
  Mlp mlp(small_config(2));
  Rng rng(1);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  mlp.fit(x, y, 600);
  EXPECT_LT(mlp.mean_relative_error(x, y), 0.08);
}

TEST(Mlp, LearnsQuadraticSurface) {
  Mlp mlp(small_config(1));
  std::vector<Vector> x;
  std::vector<double> y;
  for (double v = -2.0; v <= 2.0; v += 0.05) {
    x.push_back({v});
    y.push_back(v * v + 1.0);
  }
  mlp.fit(x, y, 1500);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max(worst, std::fabs(mlp.predict(x[i]) - y[i]));
  EXPECT_LT(worst, 0.4);
}

TEST(Mlp, LearnsXorWithTanh) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.learning_rate = 0.05;
  config.seed = 11;
  Mlp mlp(config);
  const std::vector<Vector> x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<double> y{0, 1, 1, 0};
  mlp.fit(x, y, 4000);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(mlp.predict(x[i]), y[i], 0.25) << "pattern " << i;
}

TEST(Mlp, MoreDataImprovesGeneralization) {
  auto make_set = [](int n, std::uint64_t seed) {
    Rng rng(seed);
    std::pair<std::vector<Vector>, std::vector<double>> set;
    for (int i = 0; i < n; ++i) {
      const double a = rng.uniform(0.5, 4.0), b = rng.uniform(0.5, 4.0);
      set.first.push_back({a, b});
      set.second.push_back(a * b + std::sqrt(a));
    }
    return set;
  };
  const auto test_set = make_set(100, 99);

  Mlp sparse(small_config(2));
  const auto tiny = make_set(8, 1);
  sparse.fit(tiny.first, tiny.second, 800);

  Mlp dense(small_config(2));
  const auto big = make_set(300, 2);
  dense.fit(big.first, big.second, 800);

  EXPECT_LT(dense.mean_relative_error(test_set.first, test_set.second),
            sparse.mean_relative_error(test_set.first, test_set.second));
}

TEST(Mlp, DeterministicForSeed) {
  const auto make = [] {
    Mlp mlp(small_config(1));
    std::vector<Vector> x{{0.0}, {1.0}, {2.0}};
    std::vector<double> y{1.0, 2.0, 3.0};
    mlp.fit(x, y, 100);
    return mlp.predict({1.5});
  };
  EXPECT_DOUBLE_EQ(make(), make());
}

TEST(Mlp, RejectsBadConfigurations) {
  MlpConfig config;
  config.layer_sizes = {3};
  EXPECT_THROW(Mlp{config}, std::invalid_argument);
  config.layer_sizes = {3, 4, 2};  // multi-output unsupported
  EXPECT_THROW(Mlp{config}, std::invalid_argument);
}

TEST(Mlp, RejectsBadTrainingSets) {
  Mlp mlp(small_config(1));
  EXPECT_THROW(mlp.fit({}, {}, 10), std::invalid_argument);
  EXPECT_THROW(mlp.fit({{1.0}}, {1.0, 2.0}, 10), std::invalid_argument);
  EXPECT_THROW((void)mlp.train_epoch({{1.0}}, {1.0}), std::invalid_argument);  // fit first
}

bool bit_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

std::pair<std::vector<Vector>, std::vector<double>> curved_set(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::pair<std::vector<Vector>, std::vector<double>> set;
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(0.25, 4.0), b = rng.uniform(0.25, 4.0);
    set.first.push_back({a, b});
    set.second.push_back(a * b + std::sqrt(a) + 0.5 * b);
  }
  return set;
}

TEST(Mlp, PredictBatchMatchesPredictBitwise) {
  Mlp mlp(small_config(2));
  const auto train = curved_set(120, 5);
  mlp.fit(train.first, train.second, 300);
  const auto query = curved_set(64, 6);
  const std::vector<double> batch = mlp.predict_batch(query.first);
  ASSERT_EQ(batch.size(), query.first.size());
  for (std::size_t i = 0; i < query.first.size(); ++i)
    EXPECT_TRUE(bit_equal(batch[i], mlp.predict(query.first[i]))) << "query " << i;
  EXPECT_TRUE(mlp.predict_batch({}).empty());
}

TEST(Mlp, MeanRelativeErrorSkipsZeroTargets) {
  Mlp mlp(small_config(1));
  mlp.fit({{0.0}, {1.0}, {2.0}}, {1.0, 2.0, 3.0}, 200);
  // A zero-valued target must not poison the mean with inf/NaN: it is
  // skipped under kMreEpsilon and the error is averaged over the rest.
  const double with_zero = mlp.mean_relative_error({{0.0}, {1.0}}, {0.0, 2.0});
  EXPECT_TRUE(std::isfinite(with_zero));
  EXPECT_DOUBLE_EQ(with_zero, mlp.mean_relative_error({{1.0}}, {2.0}));
  // All-zero targets: nothing to average, defined as 0.0, not NaN.
  EXPECT_DOUBLE_EQ(mlp.mean_relative_error({{1.0}}, {0.0}), 0.0);
  EXPECT_DOUBLE_EQ(mlp.mean_relative_error({{1.0}}, {Mlp::kMreEpsilon / 2.0}), 0.0);
}

// The surrogate driver's reproducibility contract: training is a pure
// function of (config.seed, training set) — the caller's thread-pool width
// must not leak into the weights or the predictions.
TEST(Mlp, TrainingDeterministicAcrossThreadCounts) {
  const auto train = curved_set(80, 9);
  const auto query = curved_set(32, 10);
  auto fit_under_pool = [&](std::size_t threads) {
    exec::set_thread_count(threads);
    Mlp mlp(small_config(2));
    mlp.fit(train.first, train.second, 250);
    return mlp;
  };
  const Mlp reference = fit_under_pool(1);
  const std::vector<double> reference_pred = reference.predict_batch(query.first);
  for (const std::size_t threads : {2UL, 8UL}) {
    const Mlp other = fit_under_pool(threads);
    ASSERT_EQ(other.weights().size(), reference.weights().size());
    for (std::size_t l = 0; l < reference.weights().size(); ++l) {
      const Matrix& a = reference.weights()[l];
      const Matrix& b = other.weights()[l];
      ASSERT_EQ(a.rows(), b.rows());
      ASSERT_EQ(a.cols(), b.cols());
      for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
          EXPECT_TRUE(bit_equal(a(r, c), b(r, c)))
              << "layer " << l << " (" << r << "," << c << ") threads=" << threads;
    }
    const std::vector<double> pred = other.predict_batch(query.first);
    for (std::size_t i = 0; i < pred.size(); ++i)
      EXPECT_TRUE(bit_equal(pred[i], reference_pred[i])) << "query " << i;
  }
  exec::set_thread_count(0);
}

TEST(FeatureScaler, OutputsStayInUnitRangeOnTrainingSamples) {
  Rng rng(17);
  std::vector<Vector> samples;
  for (int i = 0; i < 100; ++i)
    samples.push_back({rng.uniform(-50.0, 50.0), rng.uniform(0.0, 1e6), 3.25});
  FeatureScaler scaler;
  scaler.fit(samples);
  for (const Vector& s : samples) {
    const Vector t = scaler.transform(s);
    for (std::size_t d = 0; d < t.size(); ++d) {
      EXPECT_GE(t[d], -1.0) << "dim " << d;
      EXPECT_LE(t[d], 1.0) << "dim " << d;
    }
    EXPECT_DOUBLE_EQ(t[2], 0.0);  // constant feature maps to 0
  }
}

TEST(FeatureScaler, TransformIsAffineRoundTrip) {
  Rng rng(23);
  std::vector<Vector> samples;
  for (int i = 0; i < 40; ++i) samples.push_back({rng.uniform(2.0, 9.0)});
  FeatureScaler scaler;
  scaler.fit(samples);
  double lo = samples[0][0], hi = samples[0][0];
  for (const Vector& s : samples) {
    lo = std::min(lo, s[0]);
    hi = std::max(hi, s[0]);
  }
  // The map is affine per dimension, so the documented inverse recovers
  // every training sample (up to rounding) from its transformed image.
  for (const Vector& s : samples) {
    const double t = scaler.transform(s)[0];
    EXPECT_NEAR(lo + (t + 1.0) / 2.0 * (hi - lo), s[0], 1e-9);
  }
}

TEST(FeatureScaler, TransformIntoMatchesTransformBitwise) {
  FeatureScaler scaler;
  scaler.fit({{0.0, 10.0, 7.0}, {4.0, 20.0, 7.0}});
  Vector out;
  for (const Vector& q :
       {Vector{1.0, 12.0, 7.0}, Vector{-3.0, 25.0, 8.0}, Vector{4.0, 10.0, 7.0}}) {
    scaler.transform_into(q, out);
    const Vector want = scaler.transform(q);
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t d = 0; d < want.size(); ++d) EXPECT_TRUE(bit_equal(out[d], want[d]));
  }
}

}  // namespace
}  // namespace c2b
