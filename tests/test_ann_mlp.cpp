#include "c2b/ann/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "c2b/common/rng.h"

namespace c2b {
namespace {

TEST(FeatureScaler, MapsToMinusOneOne) {
  FeatureScaler scaler;
  scaler.fit({{0.0, 10.0}, {4.0, 20.0}});
  const Vector lo = scaler.transform({0.0, 10.0});
  EXPECT_DOUBLE_EQ(lo[0], -1.0);
  EXPECT_DOUBLE_EQ(lo[1], -1.0);
  const Vector hi = scaler.transform({4.0, 20.0});
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
  const Vector mid = scaler.transform({2.0, 15.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.0);
  EXPECT_DOUBLE_EQ(mid[1], 0.0);
}

TEST(FeatureScaler, ConstantFeatureMapsToZero) {
  FeatureScaler scaler;
  scaler.fit({{5.0}, {5.0}});
  EXPECT_DOUBLE_EQ(scaler.transform({5.0})[0], 0.0);
}

TEST(FeatureScaler, GuardsMisuse) {
  FeatureScaler scaler;
  EXPECT_THROW((void)scaler.transform({1.0}), std::invalid_argument);
  EXPECT_THROW(scaler.fit({}), std::invalid_argument);
}

MlpConfig small_config(std::size_t inputs) {
  MlpConfig config;
  config.layer_sizes = {inputs, 12, 1};
  config.learning_rate = 0.02;
  config.seed = 3;
  return config;
}

TEST(Mlp, LearnsLinearFunction) {
  Mlp mlp(small_config(2));
  Rng rng(1);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  mlp.fit(x, y, 600);
  EXPECT_LT(mlp.mean_relative_error(x, y), 0.08);
}

TEST(Mlp, LearnsQuadraticSurface) {
  Mlp mlp(small_config(1));
  std::vector<Vector> x;
  std::vector<double> y;
  for (double v = -2.0; v <= 2.0; v += 0.05) {
    x.push_back({v});
    y.push_back(v * v + 1.0);
  }
  mlp.fit(x, y, 1500);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max(worst, std::fabs(mlp.predict(x[i]) - y[i]));
  EXPECT_LT(worst, 0.4);
}

TEST(Mlp, LearnsXorWithTanh) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.learning_rate = 0.05;
  config.seed = 11;
  Mlp mlp(config);
  const std::vector<Vector> x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<double> y{0, 1, 1, 0};
  mlp.fit(x, y, 4000);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(mlp.predict(x[i]), y[i], 0.25) << "pattern " << i;
}

TEST(Mlp, MoreDataImprovesGeneralization) {
  auto make_set = [](int n, std::uint64_t seed) {
    Rng rng(seed);
    std::pair<std::vector<Vector>, std::vector<double>> set;
    for (int i = 0; i < n; ++i) {
      const double a = rng.uniform(0.5, 4.0), b = rng.uniform(0.5, 4.0);
      set.first.push_back({a, b});
      set.second.push_back(a * b + std::sqrt(a));
    }
    return set;
  };
  const auto test_set = make_set(100, 99);

  Mlp sparse(small_config(2));
  const auto tiny = make_set(8, 1);
  sparse.fit(tiny.first, tiny.second, 800);

  Mlp dense(small_config(2));
  const auto big = make_set(300, 2);
  dense.fit(big.first, big.second, 800);

  EXPECT_LT(dense.mean_relative_error(test_set.first, test_set.second),
            sparse.mean_relative_error(test_set.first, test_set.second));
}

TEST(Mlp, DeterministicForSeed) {
  const auto make = [] {
    Mlp mlp(small_config(1));
    std::vector<Vector> x{{0.0}, {1.0}, {2.0}};
    std::vector<double> y{1.0, 2.0, 3.0};
    mlp.fit(x, y, 100);
    return mlp.predict({1.5});
  };
  EXPECT_DOUBLE_EQ(make(), make());
}

TEST(Mlp, RejectsBadConfigurations) {
  MlpConfig config;
  config.layer_sizes = {3};
  EXPECT_THROW(Mlp{config}, std::invalid_argument);
  config.layer_sizes = {3, 4, 2};  // multi-output unsupported
  EXPECT_THROW(Mlp{config}, std::invalid_argument);
}

TEST(Mlp, RejectsBadTrainingSets) {
  Mlp mlp(small_config(1));
  EXPECT_THROW(mlp.fit({}, {}, 10), std::invalid_argument);
  EXPECT_THROW(mlp.fit({{1.0}}, {1.0, 2.0}, 10), std::invalid_argument);
  EXPECT_THROW((void)mlp.train_epoch({{1.0}}, {1.0}), std::invalid_argument);  // fit first
}

}  // namespace
}  // namespace c2b
