// Post-mortem report builder tests: exact quantiles, journal-record
// aggregation (phases fold by name, cache/batch accounting, savings
// attribution), the rendered text, and the objective heatmap CSV.

#include "c2b/obs/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace c2b::obs {
namespace {

JournalRecord make(const std::string& type, double ts_ms) {
  JournalRecord record;
  record.type = type;
  record.ts_ms = ts_ms;
  return record;
}

TEST(ExactQuantileTest, MatchesHandComputedValues) {
  EXPECT_EQ(exact_quantile({}, 0.5), 0.0);
  EXPECT_EQ(exact_quantile({7.0}, 0.0), 7.0);
  EXPECT_EQ(exact_quantile({7.0}, 1.0), 7.0);
  // Sorted {1,2,3,4}: p50 sits halfway between 2 and 3.
  EXPECT_DOUBLE_EQ(exact_quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(exact_quantile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  // {10,20,30,40,50}: p90 is at position 3.6 -> 40 + 0.6*10.
  EXPECT_DOUBLE_EQ(exact_quantile({10, 20, 30, 40, 50}, 0.9), 46.0);
  EXPECT_DOUBLE_EQ(exact_quantile({10, 20, 30, 40, 50}, 2.0), 50.0);  // clamped
}

std::vector<JournalRecord> synthetic_run() {
  std::vector<JournalRecord> records;

  auto run_begin = make("run_begin", 0.0);
  run_begin.strings["command"] = "dse";
  run_begin.numbers["threads"] = 4.0;
  records.push_back(run_begin);

  auto config = make("sweep_config", 0.1);
  config.strings["workload"] = "stencil";
  config.strings["workload_uid"] = "stencil/v1";
  records.push_back(config);

  auto peel = make("cache_peel", 1.0);
  peel.numbers["points"] = 10.0;
  peel.numbers["hits"] = 4.0;
  peel.numbers["misses"] = 6.0;
  records.push_back(peel);

  for (int round = 0; round < 2; ++round) {
    auto phase = make("phase_end", 2.0 + round);
    phase.strings["name"] = "sweep";
    phase.numbers["wall_ms"] = 10.0;
    records.push_back(phase);
  }
  auto plan = make("phase_end", 5.0);
  plan.strings["name"] = "plan";
  plan.numbers["wall_ms"] = 2.0;
  records.push_back(plan);

  const double walls[] = {2.0, 4.0, 6.0};
  for (int i = 0; i < 3; ++i) {
    auto cls = make("class_completed", 6.0 + i);
    cls.numbers["cores"] = 1.0 + i;
    cls.numbers["members"] = 2.0;
    cls.numbers["wall_ms"] = walls[i];
    cls.strings["config"] = "n=" + std::to_string(1 + i) + " a0=1";
    records.push_back(cls);
  }

  auto batch = make("batch_stats", 9.0);
  batch.numbers["chunks_shared"] = 5.0;
  batch.numbers["regen_avoided_accesses"] = 1000.0;
  records.push_back(batch);

  const double objectives[] = {5.0, 3.0, 4.0, 6.0};
  for (int i = 0; i < 4; ++i) {
    auto point = make("point", 10.0 + i);
    point.numbers["n"] = i < 2 ? 1.0 : 2.0;
    point.numbers["a0"] = 1.0;
    point.numbers["a1"] = i % 2 == 0 ? 0.5 : 1.0;
    point.numbers["a2"] = 2.0;
    point.numbers["objective"] = objectives[i];
    point.numbers["cached"] = i == 1 ? 1.0 : 0.0;
    records.push_back(point);
  }

  auto end = make("run_end", 50.0);
  end.numbers["exit_code"] = 0.0;
  records.push_back(end);
  return records;
}

TEST(BuildReportTest, AggregatesSyntheticRun) {
  const RunReport report = build_report(synthetic_run());

  EXPECT_EQ(report.command, "dse");
  EXPECT_EQ(report.workload, "stencil");
  EXPECT_EQ(report.workload_uid, "stencil/v1");
  EXPECT_EQ(report.threads, 4.0);
  EXPECT_TRUE(report.saw_run_end);
  EXPECT_DOUBLE_EQ(report.total_wall_ms, 50.0);

  // Phases fold by name: two "sweep" ends merge into one row.
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].name, "sweep");
  EXPECT_DOUBLE_EQ(report.phases[0].wall_ms, 20.0);
  EXPECT_EQ(report.phases[0].count, 2u);
  EXPECT_EQ(report.phases[1].name, "plan");
  EXPECT_DOUBLE_EQ(report.phases[1].wall_ms, 2.0);

  EXPECT_DOUBLE_EQ(report.points, 10.0);
  EXPECT_DOUBLE_EQ(report.cache_hits, 4.0);
  EXPECT_DOUBLE_EQ(report.chunks_shared, 5.0);
  EXPECT_DOUBLE_EQ(report.regen_avoided_accesses, 1000.0);

  // Classes are sorted slowest-first; totals cover all three.
  ASSERT_EQ(report.classes.size(), 3u);
  EXPECT_DOUBLE_EQ(report.classes[0].wall_ms, 6.0);
  EXPECT_DOUBLE_EQ(report.classes[2].wall_ms, 2.0);
  EXPECT_DOUBLE_EQ(report.simulated_members, 6.0);
  EXPECT_DOUBLE_EQ(report.simulated_wall_ms, 12.0);
  EXPECT_DOUBLE_EQ(report.class_wall_p50, 4.0);

  // Savings: 4 hits x (12 ms / 6 members) = 8 ms -> (12+8)/12 speedup.
  EXPECT_DOUBLE_EQ(report.est_saved_ms, 8.0);
  EXPECT_DOUBLE_EQ(report.batch_speedup, 20.0 / 12.0);

  ASSERT_EQ(report.explored.size(), 4u);
  EXPECT_TRUE(report.explored[1].cached);
  EXPECT_FALSE(report.explored[0].cached);
}

TEST(BuildReportTest, MidRunJournalFlagged) {
  auto records = synthetic_run();
  records.pop_back();  // drop run_end
  const RunReport report = build_report(records);
  EXPECT_FALSE(report.saw_run_end);
  const std::string text = render_report(report);
  EXPECT_NE(text.find("journal ends mid-run"), std::string::npos);
}

TEST(RenderReportTest, ContainsAllSections) {
  JournalReadStats stats;
  stats.lines = 20;
  stats.parsed = 19;
  stats.skipped = 1;
  const std::string text = render_report(build_report(synthetic_run(), stats), 2);

  EXPECT_NE(text.find("== run =="), std::string::npos);
  EXPECT_NE(text.find("workload     stencil (uid stencil/v1)"), std::string::npos);
  EXPECT_NE(text.find("torn/corrupt skipped"), std::string::npos);
  EXPECT_NE(text.find("== phase time breakdown =="), std::string::npos);
  EXPECT_NE(text.find("sweep"), std::string::npos);
  EXPECT_NE(text.find("== cache/batch effectiveness =="), std::string::npos);
  EXPECT_NE(text.find("cache hits peeled      4 (40.0%)"), std::string::npos);
  EXPECT_NE(text.find("== per-class sim time =="), std::string::npos);
  EXPECT_NE(text.find("top 2 slowest classes:"), std::string::npos);
  EXPECT_NE(text.find("n=3 a0=1"), std::string::npos);  // slowest class config
  EXPECT_NE(text.find("== explored space =="), std::string::npos);
  EXPECT_NE(text.find("best    objective=3"), std::string::npos);
}

TEST(HeatmapTest, MinObjectivePerCell) {
  const std::string csv = heatmap_csv(build_report(synthetic_run()));
  // Columns ordered by (a1, a2); rows by n_cores; cells are min objective.
  // n=1 has a1=0.5 -> 5.0 and a1=1 -> 3.0; n=2 has a1=0.5 -> 4.0, a1=1 -> 6.0.
  EXPECT_EQ(csv,
            "n_cores,a1=0.5/a2=2,a1=1/a2=2\n"
            "1,5,3\n"
            "2,4,6\n");
}

TEST(HeatmapTest, EmptyWithoutPointEvents) {
  EXPECT_TRUE(heatmap_csv(build_report({})).empty());
  const std::string text = render_report(build_report({}));
  EXPECT_NE(text.find("command      ?"), std::string::npos);
}

}  // namespace
}  // namespace c2b::obs
