// Flight-recorder writer/reader tests: event-schema round-trip through the
// JSONL file, crash-truncation tolerance, I/O-failure drop accounting,
// thread-equivalent event multisets (both for raw writers and for the real
// batched sweep), and the journal's zero-interference guarantee (sweep
// results bit-identical with the recorder on).

#include "c2b/obs/journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "c2b/aps/dse.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/obs/registry.h"
#include "c2b/trace/workloads.h"

namespace c2b::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "c2b_journal_" + name;
}

TEST(JournalEventTest, BuildsEscapedFields) {
  JournalEvent event("demo");
  event.str("label", "a \"quoted\" \\ back\nslash");
  event.num("value", 1.5);
  event.count("hits", 42);
  EXPECT_EQ(event.type(), "demo");
  EXPECT_NE(event.fields().find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(event.fields().find("\\u000a"), std::string::npos);
  EXPECT_NE(event.fields().find("\"value\":1.5"), std::string::npos);
  EXPECT_NE(event.fields().find("\"hits\":42"), std::string::npos);
}

TEST(JournalTest, EventSchemaRoundTrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  {
    auto journal = RunJournal::open(path);
    ASSERT_NE(journal, nullptr);
    journal->emit(JournalEvent("run_begin")
                      .str("command", "dse")
                      .str("argv", "--workload stencil \"quoted\"")
                      .count("threads", 8));
    journal->emit(JournalEvent("class_completed")
                      .count("cores", 4)
                      .count("members", 16)
                      .num("wall_ms", 12.625)
                      .str("config", "n=4 a0=1 a1=0.5 a2=2"));
    journal->emit(JournalEvent("weird").str("text", "tab\there\nnewline"));
    EXPECT_EQ(journal->written_events(), 3u);
    EXPECT_EQ(journal->dropped_events(), 0u);
  }  // destructor flushes

  JournalReadStats stats;
  const std::vector<JournalRecord> records = read_journal(path, &stats);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].type, "run_begin");
  EXPECT_EQ(records[0].str("command"), "dse");
  EXPECT_EQ(records[0].str("argv"), "--workload stencil \"quoted\"");
  EXPECT_EQ(records[0].num("threads"), 8.0);
  EXPECT_GE(records[0].ts_ms, 0.0);

  EXPECT_EQ(records[1].type, "class_completed");
  EXPECT_EQ(records[1].num("cores"), 4.0);
  EXPECT_EQ(records[1].num("members"), 16.0);
  EXPECT_DOUBLE_EQ(records[1].num("wall_ms"), 12.625);
  EXPECT_EQ(records[1].str("config"), "n=4 a0=1 a1=0.5 a2=2");
  EXPECT_TRUE(records[1].has("wall_ms"));
  EXPECT_FALSE(records[1].has("missing"));
  EXPECT_EQ(records[1].num("missing", -1.0), -1.0);

  EXPECT_EQ(records[2].str("text"), "tab\there\nnewline");

  // Timestamps are monotone in emission order.
  EXPECT_LE(records[0].ts_ms, records[1].ts_ms);
  EXPECT_LE(records[1].ts_ms, records[2].ts_ms);
}

TEST(JournalTest, ReaderSkipsTornFinalLine) {
  const std::string path = temp_path("torn.jsonl");
  {
    auto journal = RunJournal::open(path);
    ASSERT_NE(journal, nullptr);
    for (int i = 0; i < 5; ++i)
      journal->emit(JournalEvent("tick").count("i", static_cast<std::uint64_t>(i)));
  }
  // Simulate a crash mid-write: chop the file a few bytes into the last
  // line, leaving a torn JSON fragment with no newline.
  std::string contents;
  {
    std::ifstream in(path);
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::size_t last_line_start = contents.rfind("{\"type\"");
  ASSERT_NE(last_line_start, std::string::npos);
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, last_line_start + 12);  // torn mid-object
  }

  JournalReadStats stats;
  const std::vector<JournalRecord> records = read_journal(path, &stats);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(stats.parsed, 4u);
  EXPECT_EQ(stats.skipped, 1u);
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].num("i"), static_cast<double>(i));
}

TEST(JournalTest, ParseRejectsMalformedLines) {
  JournalRecord record;
  EXPECT_FALSE(parse_journal_line("", record));
  EXPECT_FALSE(parse_journal_line("not json", record));
  EXPECT_FALSE(parse_journal_line("{}", record));  // no type
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\"", record));          // unclosed
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\",\"v\":}", record));  // no value
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\",\"v\":12a}", record));
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\"} trailing", record));
  EXPECT_TRUE(parse_journal_line("{\"type\":\"x\"}\r\n", record));
  EXPECT_TRUE(parse_journal_line("  {\"type\":\"x\", \"v\": 3}  ", record));
  EXPECT_EQ(record.num("v"), 3.0);
}

TEST(JournalTest, MissingFileReadsEmpty) {
  JournalReadStats stats;
  const auto records = read_journal(temp_path("does_not_exist.jsonl"), &stats);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(stats.lines, 0u);
}

TEST(JournalTest, DropsAreCountedOnIoFailure) {
  // /dev/full accepts the open but fails every write — exactly the
  // disk-full failure mode the drop counter exists for.
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "/dev/full not available";
  RunJournal::Options options;
  options.buffer_events = 1;  // flush (and fail) on every emit
  auto journal = RunJournal::open("/dev/full", options);
  ASSERT_NE(journal, nullptr);
  for (int i = 0; i < 3; ++i) journal->emit(JournalEvent("tick"));
  journal->flush();
  EXPECT_EQ(journal->written_events(), 3u);
  EXPECT_EQ(journal->dropped_events(), 3u);

  const std::vector<DropCounter> counters = drop_counters(journal.get());
  const auto it = std::find_if(counters.begin(), counters.end(),
                               [](const DropCounter& c) { return c.name == "obs.journal"; });
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->dropped, 3u);
}

TEST(JournalTest, DropCountersAlwaysIncludeSpanRing) {
  const std::vector<DropCounter> counters = drop_counters(nullptr);
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "obs.span_ring");
}

TEST(JournalTest, ActiveJournalInstallAndClear) {
  EXPECT_EQ(active_journal(), nullptr);
  auto journal = RunJournal::open(temp_path("active.jsonl"));
  ASSERT_NE(journal, nullptr);
  set_active_journal(journal.get());
  EXPECT_EQ(active_journal(), journal.get());
  set_active_journal(nullptr);
  EXPECT_EQ(active_journal(), nullptr);
}

TEST(JournalTest, MetricsSnapshotCarriesRegistryValues) {
  Registry::global().counter("test.journal.snapshot_counter").add(7);
  Registry::global().gauge("test.journal.snapshot_gauge").set(2.5);
  const std::string path = temp_path("metrics.jsonl");
  {
    auto journal = RunJournal::open(path);
    ASSERT_NE(journal, nullptr);
    journal->snapshot_metrics(/*force=*/true);
  }
  const auto records = read_journal(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, "metrics");
  EXPECT_EQ(records[0].num("test.journal.snapshot_counter"), 7.0);
  EXPECT_DOUBLE_EQ(records[0].num("test.journal.snapshot_gauge"), 2.5);
}

TEST(JournalTest, SnapshotRateLimitHonored) {
  const std::string path = temp_path("ratelimit.jsonl");
  {
    RunJournal::Options options;
    options.metrics_interval_ms = 60'000;  // nothing after the first within a test run
    auto journal = RunJournal::open(path, options);
    ASSERT_NE(journal, nullptr);
    journal->snapshot_metrics();
    journal->snapshot_metrics();
    journal->snapshot_metrics();
    journal->snapshot_metrics(/*force=*/true);
  }
  EXPECT_EQ(read_journal(path).size(), 2u);
}

/// Strip the wall-clock fields (ts_ms, wall_ms) and sort: the canonical
/// form in which journals from different thread counts must agree.
std::vector<std::string> canonical_multiset(const std::vector<JournalRecord>& records,
                                            const std::string& type_prefix) {
  std::vector<std::string> out;
  for (const JournalRecord& record : records) {
    if (record.type.rfind(type_prefix, 0) != 0) continue;
    std::string line = record.type;
    for (const auto& [key, value] : record.strings) line += "|" + key + "=" + value;
    for (const auto& [key, value] : record.numbers) {
      if (key == "wall_ms") continue;
      char buf[48];
      std::snprintf(buf, sizeof buf, "|%s=%.17g", key.c_str(), value);
      line += buf;
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(JournalTest, ConcurrentWritersProduceEquivalentMultiset) {
  // The same 64 logical events, emitted by 1, 2, and 8 threads: every
  // journal must hold the same multiset (interleaving may differ), every
  // line must be intact (no torn/interleaved writes).
  std::vector<std::vector<std::string>> multisets;
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::string path = temp_path("writers" + std::to_string(threads) + ".jsonl");
    {
      RunJournal::Options options;
      options.buffer_events = 4;  // exercise concurrent flushes
      auto journal = RunJournal::open(path, options);
      ASSERT_NE(journal, nullptr);
      std::vector<std::thread> workers;
      for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([&journal, t, threads] {
          for (std::uint64_t i = t; i < 64; i += threads) {
            std::string tag = "t";
            tag += std::to_string(i % 7);
            journal->emit(JournalEvent("work").count("item", i).str("tag", tag));
          }
        });
      for (std::thread& worker : workers) worker.join();
      EXPECT_EQ(journal->written_events(), 64u);
      EXPECT_EQ(journal->dropped_events(), 0u);
    }
    JournalReadStats stats;
    const auto records = read_journal(path, &stats);
    EXPECT_EQ(stats.skipped, 0u) << "torn line with " << threads << " writers";
    ASSERT_EQ(records.size(), 64u);
    multisets.push_back(canonical_multiset(records, "work"));
  }
  EXPECT_EQ(multisets[0], multisets[1]);
  EXPECT_EQ(multisets[0], multisets[2]);
}

// ---------------------------------------------------------------------------
// End-to-end: the batched sweep records through the journal

DseContext small_context() {
  DseContext context;
  const auto catalog = workload_catalog();
  for (const WorkloadSpec& spec : catalog)
    if (spec.name == "stencil") context.workload = spec;
  context.instructions0 = 20'000;
  context.per_core_cap = 5'000;
  context.chip.total_area = 9.0;
  context.chip.shared_area = 1.0;
  return context;
}

std::vector<std::vector<double>> small_points(const DseContext& context) {
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  const GridSpace space = make_design_space(axes);
  std::vector<std::vector<double>> points;
  space.for_each([&](std::size_t, const std::vector<double>& point) {
    if (design_feasible(context, point)) points.push_back(point);
  });
  return points;
}

TEST(JournalSweepTest, ClassEventMultisetIdenticalAcrossThreadCounts) {
  const DseContext context = small_context();
  const std::vector<std::vector<double>> points = small_points(context);
  ASSERT_FALSE(points.empty());

  std::vector<std::vector<std::string>> scheduled, completed;
  std::vector<std::vector<double>> all_times;
  // clear() deliberately keeps the disk tier (the cross-run layer); this
  // test needs genuinely cold runs, so drop any $C2B_SIM_CACHE_DIR tier.
  exec::SimCache::global().detach_disk_tier();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::SimCache::global().clear();  // every run simulates from scratch
    exec::set_thread_count(threads);
    const std::string path = temp_path("sweep" + std::to_string(threads) + ".jsonl");
    std::vector<BatchSimOutcome> outcomes;
    {
      auto journal = RunJournal::open(path);
      ASSERT_NE(journal, nullptr);
      set_active_journal(journal.get());
      outcomes = simulate_design_times_batched(context, points, nullptr);
      set_active_journal(nullptr);
    }
    const auto records = read_journal(path);
    scheduled.push_back(canonical_multiset(records, "class_scheduled"));
    completed.push_back(canonical_multiset(records, "class_completed"));
    EXPECT_FALSE(scheduled.back().empty());
    EXPECT_EQ(scheduled.back().size(), completed.back().size());
    std::vector<double> times;
    for (const BatchSimOutcome& outcome : outcomes) times.push_back(outcome.time);
    all_times.push_back(std::move(times));
  }
  exec::set_thread_count(0);
  EXPECT_EQ(scheduled[0], scheduled[1]);
  EXPECT_EQ(scheduled[0], scheduled[2]);
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(completed[0], completed[2]);
  // And the sweep itself stays bit-identical across thread counts.
  EXPECT_EQ(all_times[0], all_times[1]);
  EXPECT_EQ(all_times[0], all_times[2]);
}

TEST(JournalSweepTest, RecorderDoesNotPerturbSweepResults) {
  const DseContext context = small_context();
  const std::vector<std::vector<double>> points = small_points(context);

  exec::SimCache::global().clear();
  const std::vector<BatchSimOutcome> plain =
      simulate_design_times_batched(context, points, nullptr);

  exec::SimCache::global().clear();
  std::vector<BatchSimOutcome> recorded;
  {
    auto journal = RunJournal::open(temp_path("perturb.jsonl"));
    ASSERT_NE(journal, nullptr);
    set_active_journal(journal.get());
    recorded = simulate_design_times_batched(context, points, nullptr);
    set_active_journal(nullptr);
  }

  ASSERT_EQ(plain.size(), recorded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].time, recorded[i].time) << "point " << i;  // bitwise
    EXPECT_EQ(plain[i].memory_accesses, recorded[i].memory_accesses);
  }
}

TEST(JournalSweepTest, CachePeelEventAccountsSecondRun) {
  const DseContext context = small_context();
  const std::vector<std::vector<double>> points = small_points(context);

  // The first sweep must be a true cold miss for every point: detach any
  // $C2B_SIM_CACHE_DIR disk tier (clear() keeps it by design).
  exec::SimCache::global().detach_disk_tier();
  exec::SimCache::global().clear();
  const std::string path = temp_path("peel.jsonl");
  {
    auto journal = RunJournal::open(path);
    ASSERT_NE(journal, nullptr);
    set_active_journal(journal.get());
    simulate_design_times_batched(context, points, nullptr);  // cold
    simulate_design_times_batched(context, points, nullptr);  // fully cached
    set_active_journal(nullptr);
  }
  const auto records = read_journal(path);
  std::vector<const JournalRecord*> peels;
  for (const JournalRecord& record : records)
    if (record.type == "cache_peel") peels.push_back(&record);
  ASSERT_EQ(peels.size(), 2u);
  EXPECT_EQ(peels[0]->num("hits"), 0.0);
  EXPECT_EQ(peels[1]->num("hits"), static_cast<double>(points.size()));
  EXPECT_EQ(peels[1]->num("misses"), 0.0);
}

}  // namespace
}  // namespace c2b::obs
