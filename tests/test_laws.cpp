#include <gtest/gtest.h>

#include <cmath>

#include "c2b/laws/pollack.h"
#include "c2b/laws/scaling.h"
#include "c2b/laws/speedup.h"

namespace c2b {
namespace {

// ---------------------------------------------------------------------------
// Speedup laws (Eq. 4 and special cases)

TEST(Speedup, AmdahlKnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 64.0), 1.0);
  EXPECT_NEAR(amdahl_speedup(0.05, 1e9), 20.0, 1e-3);  // 1/f_seq limit
}

TEST(Speedup, GustafsonKnownValues) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(1.0, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.5, 10.0), 5.5);
}

TEST(Speedup, SunNiReducesToAmdahlWhenGIsOne) {
  for (const double f : {0.0, 0.1, 0.5, 1.0})
    for (const double n : {1.0, 2.0, 16.0, 512.0})
      EXPECT_NEAR(sunni_speedup(f, 1.0, n), amdahl_speedup(f, n), 1e-12);
}

TEST(Speedup, SunNiReducesToGustafsonWhenGIsN) {
  for (const double f : {0.0, 0.1, 0.5, 1.0})
    for (const double n : {1.0, 2.0, 16.0, 512.0})
      EXPECT_NEAR(sunni_speedup(f, n, n), gustafson_speedup(f, n), 1e-12);
}

TEST(Speedup, SunNiPaperExampleOrderN) {
  // g(N) = N^{3/2}: S = (f + (1-f) N^{3/2}) / (f + (1-f) N^{1/2}) -> O(N).
  const double f = 0.1;
  const double n = 10000.0;
  const double s = sunni_speedup(f, std::pow(n, 1.5), n);
  EXPECT_NEAR(s / n, 1.0, 0.01);
}

TEST(Speedup, SunNiAtOneCoreIsOne) {
  EXPECT_DOUBLE_EQ(sunni_speedup(0.3, 1.0, 1.0), 1.0);
}

TEST(Speedup, SunNiMonotoneInG) {
  // More memory-bounded scaling (larger g) yields higher speedup.
  const double f = 0.2, n = 64.0;
  double prev = 0.0;
  for (const double g : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    const double s = sunni_speedup(f, g, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Speedup, ScalingFunctionOverload) {
  const ScalingFunction g = ScalingFunction::power(1.5);
  EXPECT_NEAR(sunni_speedup(0.1, g, 16.0), sunni_speedup(0.1, 64.0, 16.0), 1e-12);
  EXPECT_DOUBLE_EQ(scaled_problem_size(100.0, g, 4.0), 800.0);
}

TEST(Speedup, InvalidInputsThrow) {
  EXPECT_THROW((void)sunni_speedup(-0.1, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)sunni_speedup(0.1, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)sunni_speedup(0.1, 1.0, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PowerLawWorkload (the paper's dense-matrix derivation)

TEST(PowerLawWorkload, DenseMatrixMultiplyDerivation) {
  const PowerLawWorkload mm = PowerLawWorkload::dense_matrix_multiply();
  // W = 2n^3, M = 3n^2 at n = 10: W = 2000, M = 300.
  EXPECT_NEAR(mm.work_for_memory(300.0), 2000.0, 1e-9);
  EXPECT_NEAR(mm.memory_for_work(2000.0), 300.0, 1e-9);
  // g(N) = h(N M)/h(M) = N^{3/2} regardless of the coefficient.
  EXPECT_NEAR(mm.g(4.0), 8.0, 1e-12);
  EXPECT_NEAR(mm.work_for_memory(4.0 * 300.0) / mm.work_for_memory(300.0), 8.0, 1e-9);
}

// ---------------------------------------------------------------------------
// ScalingFunction / Table I

TEST(Scaling, FixedLinearPower) {
  EXPECT_DOUBLE_EQ(ScalingFunction::fixed()(100.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::linear()(100.0), 100.0);
  EXPECT_NEAR(ScalingFunction::power(1.5)(4.0), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(ScalingFunction::power(0.0)(7.0), 1.0);
}

TEST(Scaling, BoundaryConditionGOfOneIsOne) {
  EXPECT_DOUBLE_EQ(ScalingFunction::fixed()(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::linear()(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::power(1.5)(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::fft_like(1024.0)(1.0), 1.0);
}

TEST(Scaling, FromComplexityMatchesTableI) {
  EXPECT_NEAR(ScalingFunction::from_complexity(3.0, 2.0)(4.0), 8.0, 1e-12);   // TMM
  EXPECT_NEAR(ScalingFunction::from_complexity(1.0, 1.0)(9.0), 9.0, 1e-12);   // stencil
}

TEST(Scaling, FftLikeAtMEqualsNGivesTwoN) {
  // g(N) = N (log2 N + log2 M)/log2 M evaluated at M = N is 2N.
  for (const double n : {4.0, 64.0, 1024.0})
    EXPECT_NEAR(ScalingFunction::fft_like(n)(n), 2.0 * n, 1e-9);
}

TEST(Scaling, GrowthExponentClassification) {
  EXPECT_NEAR(ScalingFunction::power(1.5).growth_exponent(64.0), 1.5, 1e-6);
  EXPECT_NEAR(ScalingFunction::linear().growth_exponent(64.0), 1.0, 1e-6);
  EXPECT_NEAR(ScalingFunction::fixed().growth_exponent(64.0), 0.0, 1e-6);
  EXPECT_TRUE(ScalingFunction::power(1.5).at_least_linear());
  EXPECT_TRUE(ScalingFunction::linear().at_least_linear());
  EXPECT_FALSE(ScalingFunction::fixed().at_least_linear());
  EXPECT_FALSE(ScalingFunction::power(0.7).at_least_linear());
}

TEST(Scaling, MemoryScale) {
  EXPECT_DOUBLE_EQ(ScalingFunction::fixed().memory_scale(8.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::linear().memory_scale(8.0), 8.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::power(1.5).memory_scale(8.0), 8.0);
  EXPECT_DOUBLE_EQ(ScalingFunction::power(0.0).memory_scale(8.0), 1.0);
}

TEST(Scaling, DomainChecks) {
  EXPECT_THROW(ScalingFunction::power(-1.0), std::invalid_argument);
  EXPECT_THROW(ScalingFunction::linear()(0.5), std::invalid_argument);
  EXPECT_THROW(ScalingFunction::fft_like(1.0), std::invalid_argument);
}

TEST(Scaling, TableIEntries) {
  const auto rows = table1_entries();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].g(4.0), 8.0, 1e-12);    // TMM N^{3/2}
  EXPECT_NEAR(rows[1].g(16.0), 16.0, 1e-12);  // band sparse N
  EXPECT_NEAR(rows[2].g(16.0), 16.0, 1e-12);  // stencil N
  EXPECT_NEAR(rows[3].g(16.0), 32.0, 1e-12);  // FFT 2N
  EXPECT_DOUBLE_EQ(rows[3].g(1.0), 1.0);      // pinned boundary condition
  for (const auto& row : rows) EXPECT_TRUE(row.g.at_least_linear());
}

// ---------------------------------------------------------------------------
// Pollack's rule (Eq. 11)

TEST(Pollack, Equation11Shape) {
  const PollackCore core{.k0 = 2.0, .phi0 = 0.25};
  EXPECT_DOUBLE_EQ(core.cpi_exe(1.0), 2.25);
  EXPECT_DOUBLE_EQ(core.cpi_exe(4.0), 1.25);
  EXPECT_DOUBLE_EQ(core.cpi_exe(16.0), 0.75);
  EXPECT_THROW((void)core.cpi_exe(0.0), std::invalid_argument);
}

TEST(Pollack, DiminishingReturns) {
  const PollackCore core{.k0 = 1.0, .phi0 = 0.2};
  const double gain_small = core.cpi_exe(1.0) - core.cpi_exe(2.0);
  const double gain_large = core.cpi_exe(8.0) - core.cpi_exe(16.0);
  EXPECT_GT(gain_small, gain_large);
}

TEST(Pollack, AreaForCpiInverts) {
  const PollackCore core{.k0 = 1.5, .phi0 = 0.3};
  for (const double a : {0.5, 1.0, 4.0, 9.0})
    EXPECT_NEAR(core.area_for_cpi(core.cpi_exe(a)), a, 1e-9);
  EXPECT_THROW((void)core.area_for_cpi(0.3), std::invalid_argument);
}

TEST(Pollack, RelativePerformanceSqrtRule) {
  const PollackCore core{.k0 = 1.0, .phi0 = 0.0};
  EXPECT_NEAR(core.relative_performance(4.0), 2.0, 1e-12);
  EXPECT_NEAR(core.relative_performance(16.0), 4.0, 1e-12);
}

}  // namespace
}  // namespace c2b
