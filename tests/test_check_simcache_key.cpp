// Simulation-cache key coverage: behavioral aliasing tests. Two contexts
// that could produce different simulation results must never share a cache
// entry — in particular spec pairs differing only in `uid`, and pairs with
// identical uid/description whose g(N) samples differ (the numeric
// backstop in the key).

#include <gtest/gtest.h>

#include "c2b/aps/dse.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

DseContext tiny_context() {
  DseContext context;
  context.base.core.issue_width = 4;
  context.base.core.rob_size = 128;
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.workload = make_stencil_workload(64);
  context.instructions0 = 4000;
  context.per_core_cap = 2000;
  context.seed = 11;
  return context;
}

const std::vector<double> kPoint{1.0, 0.5, 1.0, 1.0, 4.0, 128.0};

class SimCacheKeyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec::SimCache::global().set_enabled(true);
    // Key-coverage tests reason about exact hit/miss counts on a cold
    // cache; a $C2B_SIM_CACHE_DIR disk tier warmed by an earlier run
    // would serve the probes (clear() keeps it by design), so drop it.
    exec::SimCache::global().detach_disk_tier();
    exec::SimCache::global().clear();
  }
  void TearDown() override { exec::SimCache::global().clear(); }

  static std::uint64_t hits() { return exec::SimCache::global().stats().hits; }
  static std::uint64_t misses() { return exec::SimCache::global().stats().misses; }
};

TEST_F(SimCacheKeyTest, IdenticalContextReplays) {
  const DseContext context = tiny_context();
  const double first = simulate_design_time(context, kPoint);
  EXPECT_EQ(hits(), 0u);
  const double second = simulate_design_time(context, kPoint);
  EXPECT_EQ(hits(), 1u) << "identical context must hit the cache";
  EXPECT_EQ(first, second);
}

TEST_F(SimCacheKeyTest, UidOnlyChangeNeverAliases) {
  DseContext context = tiny_context();
  (void)simulate_design_time(context, kPoint);
  const std::uint64_t misses_before = misses();

  // Same generator, same everything — only the declared identity differs.
  // A uid is a promise of behavioral identity; a different uid must be a
  // different key even when the rest of the spec looks the same.
  context.workload.uid += "#mutant";
  (void)simulate_design_time(context, kPoint);
  EXPECT_EQ(hits(), 0u) << "uid-only change aliased into the cached entry";
  EXPECT_GT(misses(), misses_before);
}

TEST_F(SimCacheKeyTest, SampledGValuesBackstopPreventsAliasing) {
  // Adversarial pair: identical uid AND identical description, but g
  // differs numerically. The description alone cannot distinguish them —
  // only the sampled-values backstop in the key can.
  DseContext context = tiny_context();
  context.workload.g =
      ScalingFunction::custom([](double n) { return n; }, "custom-g", true);
  (void)simulate_design_time(context, kPoint);

  DseContext other = tiny_context();
  other.workload.g =
      ScalingFunction::custom([](double n) { return 2.0 * n - 1.0; }, "custom-g", true);
  (void)simulate_design_time(other, kPoint);
  EXPECT_EQ(hits(), 0u) << "numerically different g aliased under a shared description";
}

TEST_F(SimCacheKeyTest, MemoryScaleDifferenceNeverAliases) {
  // Same g values, same description — but capacity-driven vs fixed memory
  // scaling changes the simulated working set.
  DseContext context = tiny_context();
  context.workload.g =
      ScalingFunction::custom([](double n) { return n; }, "custom-g", true);
  (void)simulate_design_time(context, kPoint);

  DseContext other = tiny_context();
  other.workload.g =
      ScalingFunction::custom([](double n) { return n; }, "custom-g", false);
  (void)simulate_design_time(other, kPoint);
  EXPECT_EQ(hits(), 0u) << "memory_scale difference aliased";
}

TEST_F(SimCacheKeyTest, SeedAndWindowChangesNeverAlias) {
  DseContext context = tiny_context();
  (void)simulate_design_time(context, kPoint);

  DseContext reseeded = tiny_context();
  reseeded.seed += 1;
  (void)simulate_design_time(reseeded, kPoint);
  EXPECT_EQ(hits(), 0u);

  DseContext longer = tiny_context();
  longer.instructions0 += 1;
  (void)simulate_design_time(longer, kPoint);
  EXPECT_EQ(hits(), 0u);

  DseContext capped = tiny_context();
  capped.per_core_cap -= 1;
  (void)simulate_design_time(capped, kPoint);
  EXPECT_EQ(hits(), 0u);
}

TEST_F(SimCacheKeyTest, EmptyUidDisablesCaching) {
  DseContext context = tiny_context();
  context.workload.uid.clear();
  (void)simulate_design_time(context, kPoint);
  (void)simulate_design_time(context, kPoint);
  EXPECT_EQ(hits(), 0u) << "hand-rolled specs without a uid must not be cached";
}

}  // namespace
}  // namespace c2b
