#include "c2b/trace/generators.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

TEST(TraceBasics, FMemAndDistinctLines) {
  Trace t;
  t.records = {{.kind = InstrKind::kCompute},
               {.kind = InstrKind::kLoad, .address = 0},
               {.kind = InstrKind::kStore, .address = 64},
               {.kind = InstrKind::kLoad, .address = 65}};
  EXPECT_EQ(t.memory_access_count(), 3u);
  EXPECT_DOUBLE_EQ(t.f_mem(), 0.75);
  EXPECT_EQ(t.distinct_lines(64), 2u);  // lines 0 and 1 (64 and 65 share)
}

TEST(TiledMatMul, MixAndDeterminism) {
  TiledMatMulGenerator a(16, 4), b(16, 4);
  const Trace ta = a.generate(5000);
  const Trace tb = b.generate(5000);
  for (std::size_t i = 0; i < ta.records.size(); ++i) {
    EXPECT_EQ(ta.records[i].kind, tb.records[i].kind);
    EXPECT_EQ(ta.records[i].address, tb.records[i].address);
  }
  // Inner loop: 1 C-load + per k (2 loads + 2 computes) + 1 store.
  EXPECT_GT(ta.f_mem(), 0.4);
  EXPECT_LT(ta.f_mem(), 0.7);
}

TEST(TiledMatMul, TouchesThreeMatrices) {
  TiledMatMulGenerator g(8, 4);
  const Trace t = g.generate(20000);
  // Footprint: 3 matrices x 64 doubles = 3 * 8 * 8 * 8 bytes = 1536 bytes
  // = 24 lines.
  EXPECT_EQ(t.distinct_lines(64), 24u);
}

TEST(TiledMatMul, ResetRestartsStream) {
  TiledMatMulGenerator g(8, 2);
  const Trace first = g.generate(100);
  g.reset();
  const Trace again = g.generate(100);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(first.records[i].address, again.records[i].address);
}

TEST(TiledMatMul, InvalidParamsThrow) {
  EXPECT_THROW(TiledMatMulGenerator(4, 8), std::invalid_argument);
  EXPECT_THROW(TiledMatMulGenerator(0, 1), std::invalid_argument);
}

TEST(Stencil, FivePointPattern) {
  StencilGenerator g(16);
  // One refill = 5 loads + 5 computes + 1 store = 11 records.
  const Trace t = g.generate(11);
  int loads = 0, stores = 0, computes = 0;
  for (const auto& r : t.records) {
    if (r.kind == InstrKind::kLoad) ++loads;
    if (r.kind == InstrKind::kStore) ++stores;
    if (r.kind == InstrKind::kCompute) ++computes;
  }
  EXPECT_EQ(loads, 5);
  EXPECT_EQ(stores, 1);
  EXPECT_EQ(computes, 5);
}

TEST(Stencil, NeighborsAreAdjacent) {
  StencilGenerator g(16);
  const Trace t = g.generate(5);  // the five loads of the first point
  const std::uint64_t center = t.records[0].address;
  EXPECT_EQ(t.records[1].address, center - 16 * 8);  // north
  EXPECT_EQ(t.records[2].address, center + 16 * 8);  // south
  EXPECT_EQ(t.records[3].address, center - 8);       // west
  EXPECT_EQ(t.records[4].address, center + 8);       // east
}

TEST(Stencil, TooSmallGridThrows) { EXPECT_THROW(StencilGenerator(2), std::invalid_argument); }

TEST(Fft, ButterflyStridePattern) {
  FftGenerator g(4);  // 16 elements
  const Trace t = g.generate(10);  // first butterfly: 2 loads, 6 computes, 2 stores
  EXPECT_EQ(t.records[0].kind, InstrKind::kLoad);
  EXPECT_EQ(t.records[1].kind, InstrKind::kLoad);
  // Stage 0: partner is 1 element (16 bytes) away.
  EXPECT_EQ(t.records[1].address - t.records[0].address, 16u);
  EXPECT_EQ(t.records[8].kind, InstrKind::kStore);
}

TEST(Fft, FootprintMatchesSize) {
  FftGenerator g(6);  // 64 complex doubles = 1024 bytes = 16 lines
  const Trace t = g.generate(60000);
  EXPECT_EQ(t.distinct_lines(64), 16u);
}

TEST(BandSparse, RowStructure) {
  BandSparseGenerator g(100, 2);
  // Row 0 at the boundary: columns 0..2 -> 3 (A,x) pairs + computes + 1 store.
  const Trace t = g.generate(13);
  int loads = 0, stores = 0;
  for (const auto& r : t.records) {
    if (r.kind == InstrKind::kLoad) ++loads;
    if (r.kind == InstrKind::kStore) ++stores;
  }
  EXPECT_EQ(loads, 6);
  EXPECT_EQ(stores, 1);
}

TEST(BandSparse, InvalidBandThrows) {
  EXPECT_THROW(BandSparseGenerator(10, 11), std::invalid_argument);
  EXPECT_THROW(BandSparseGenerator(10, 0), std::invalid_argument);
}

TEST(PointerChase, DependentLoadsCoverWholeSet) {
  PointerChaseGenerator g(64, 1, /*seed=*/9);
  const Trace t = g.generate(64 * 2);
  std::set<std::uint64_t> lines;
  for (const auto& r : t.records) {
    if (r.kind != InstrKind::kLoad) continue;
    EXPECT_TRUE(r.depends_on_prev_mem);
    lines.insert(r.address / 64);
  }
  // Sattolo cycle: all 64 lines visited before repeating.
  EXPECT_EQ(lines.size(), 64u);
}

TEST(PointerChase, ComputePadding) {
  PointerChaseGenerator g(16, 3, 1);
  const Trace t = g.generate(8);
  EXPECT_EQ(t.records[0].kind, InstrKind::kLoad);
  EXPECT_EQ(t.records[1].kind, InstrKind::kCompute);
  EXPECT_EQ(t.records[2].kind, InstrKind::kCompute);
  EXPECT_EQ(t.records[3].kind, InstrKind::kCompute);
  EXPECT_EQ(t.records[4].kind, InstrKind::kLoad);
}

TEST(ZipfStream, FMemMatchesKnob) {
  ZipfStreamGenerator::Params p;
  p.f_mem = 0.4;
  p.seed = 3;
  ZipfStreamGenerator g(p);
  const Trace t = g.generate(50000);
  EXPECT_NEAR(t.f_mem(), 0.4, 0.02);
}

TEST(ZipfStream, WriteRatioMatchesKnob) {
  ZipfStreamGenerator::Params p;
  p.f_mem = 1.0;
  p.write_ratio = 0.25;
  p.seed = 4;
  ZipfStreamGenerator g(p);
  const Trace t = g.generate(40000);
  std::uint64_t stores = 0;
  for (const auto& r : t.records) stores += (r.kind == InstrKind::kStore);
  EXPECT_NEAR(static_cast<double>(stores) / 40000.0, 0.25, 0.01);
}

TEST(ZipfStream, SkewConcentratesAccesses) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 14;
  p.zipf_exponent = 1.1;
  p.f_mem = 1.0;
  p.seed = 5;
  ZipfStreamGenerator g(p);
  const Trace t = g.generate(30000);
  // With heavy skew the touched set is far smaller than the working set.
  EXPECT_LT(t.distinct_lines(64), (1u << 14) / 2);
}

TEST(ZipfStream, HigherExponentMeansMoreLocality) {
  auto footprint = [](double s) {
    ZipfStreamGenerator::Params p;
    p.working_set_lines = 1 << 14;
    p.zipf_exponent = s;
    p.f_mem = 1.0;
    p.seed = 6;
    ZipfStreamGenerator g(p);
    return g.generate(30000).distinct_lines(64);
  };
  EXPECT_GT(footprint(0.2), footprint(1.2));
}

TEST(Phased, AlternatesBetweenGenerators) {
  std::vector<PhasedGenerator::Phase> phases;
  phases.push_back({std::make_shared<PointerChaseGenerator>(32, 0, 1), 10});
  ZipfStreamGenerator::Params zp;
  zp.f_mem = 1.0;
  zp.seed = 2;
  phases.push_back({std::make_shared<ZipfStreamGenerator>(zp), 10});
  PhasedGenerator g(std::move(phases));
  const Trace t = g.generate(40);
  // First 10 records come from the chase (all dependent loads).
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(t.records[i].depends_on_prev_mem);
  // Next 10 from the zipf stream (independent).
  for (int i = 10; i < 20; ++i) EXPECT_FALSE(t.records[i].depends_on_prev_mem);
  // Then back to the chase.
  for (int i = 20; i < 30; ++i) EXPECT_TRUE(t.records[i].depends_on_prev_mem);
}

TEST(Phased, InvalidPhasesThrow) {
  EXPECT_THROW(PhasedGenerator({}), std::invalid_argument);
  std::vector<PhasedGenerator::Phase> zero_len;
  zero_len.push_back({std::make_shared<PointerChaseGenerator>(8, 0, 1), 0});
  EXPECT_THROW(PhasedGenerator(std::move(zero_len)), std::invalid_argument);
}

TEST(WorkloadCatalog, AllSpecsGenerate) {
  for (const WorkloadSpec& spec : workload_catalog()) {
    auto gen = spec.make_generator(1.0, 11);
    ASSERT_NE(gen, nullptr) << spec.name;
    const Trace t = gen->generate(5000);
    EXPECT_EQ(t.records.size(), 5000u) << spec.name;
    EXPECT_GT(t.f_mem(), 0.0) << spec.name;
    EXPECT_GE(spec.f_seq, 0.0);
    EXPECT_LE(spec.f_seq, 1.0);
    EXPECT_DOUBLE_EQ(spec.g(1.0), 1.0) << spec.name;
  }
}

TEST(WorkloadCatalog, ScaleGrowsFootprint) {
  const WorkloadSpec spec = make_stencil_workload(64);
  const auto small = spec.make_generator(1.0, 1)->generate(400000).distinct_lines(64);
  const auto big = spec.make_generator(4.0, 1)->generate(400000).distinct_lines(64);
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 4.0, 0.8);
}

}  // namespace
}  // namespace c2b
