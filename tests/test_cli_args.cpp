// Flag-parser tests for the c2b CLI: value/boolean/`=` forms, the
// optional-value `--progress[=N]` shape, numeric parse errors that name the
// offending flag, and unknown-flag rejection via finish().

#include "cli_args.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace c2b::cli {
namespace {

/// argv helper: owns the strings, hands out mutable char* like main() gets.
class Argv {
 public:
  explicit Argv(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {
    for (std::string& token : tokens_) pointers_.push_back(token.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> tokens_;
  std::vector<char*> pointers_;
};

TEST(CliArgsTest, ParsesValueAndEqualsForms) {
  Argv argv({"c2b", "dse", "--workload", "stencil", "--threads=4", "--area", "128"});
  Args args(argv.argc(), argv.argv(), 2);
  EXPECT_EQ(args.get("workload", std::string("?")), "stencil");
  EXPECT_EQ(args.get("threads", 0ll), 4);
  EXPECT_DOUBLE_EQ(args.get("area", 0.0), 128.0);
  EXPECT_EQ(args.get("missing", std::string("fallback")), "fallback");
  args.finish();  // everything queried -> no throw
}

TEST(CliArgsTest, BooleanFlagTakesNoValue) {
  // `--progress` is registered boolean, so it must NOT eat `--workload`.
  Argv argv({"c2b", "dse", "--progress", "--workload", "stencil"});
  Args args(argv.argc(), argv.argv(), 2, {"progress"});
  EXPECT_TRUE(args.has("progress"));
  EXPECT_EQ(args.get("workload", std::string("?")), "stencil");
}

TEST(CliArgsTest, GetOptCoversAllThreeShapes) {
  {
    Argv argv({"c2b", "dse"});
    Args args(argv.argc(), argv.argv(), 2, {"progress"});
    EXPECT_FALSE(args.get_opt("progress", 500).has_value());
  }
  {
    Argv argv({"c2b", "dse", "--progress"});
    Args args(argv.argc(), argv.argv(), 2, {"progress"});
    EXPECT_EQ(args.get_opt("progress", 500), 500);  // bare form -> default
  }
  {
    Argv argv({"c2b", "dse", "--progress=250"});
    Args args(argv.argc(), argv.argv(), 2, {"progress"});
    EXPECT_EQ(args.get_opt("progress", 500), 250);
  }
}

TEST(CliArgsTest, NumericErrorsNameTheFlag) {
  Argv argv({"c2b", "dse", "--threads=lots", "--area=wide"});
  Args args(argv.argc(), argv.argv(), 2);
  try {
    args.get("threads", 0ll);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("lots"), std::string::npos);
  }
  try {
    args.get("area", 0.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--area"), std::string::npos);
  }
  try {
    args.get_opt("threads", 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--threads"), std::string::npos);
  }
}

TEST(CliArgsTest, FinishThrowsListingUnknownFlags) {
  Argv argv({"c2b", "dse", "--workload", "stencil", "--bogus=1", "--typo", "x"});
  Args args(argv.argc(), argv.argv(), 2);
  EXPECT_EQ(args.get("workload", std::string("?")), "stencil");
  try {
    args.finish();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown flag"), std::string::npos);
    EXPECT_NE(what.find("--bogus"), std::string::npos);
    EXPECT_NE(what.find("--typo"), std::string::npos);
  }
}

TEST(CliArgsTest, LockstepRecordsParsesAllForms) {
  // The batched-replay tuning flags on `dse`/`aps`: value, `=` form, and
  // absence (get_opt -> nullopt, caller keeps its default).
  {
    Argv argv({"c2b", "dse", "--lockstep-records", "512"});
    Args args(argv.argc(), argv.argv(), 2);
    EXPECT_EQ(args.get_opt("lockstep-records", 4096), 512);
    args.finish();
  }
  {
    Argv argv({"c2b", "aps", "--lockstep-records=1"});
    Args args(argv.argc(), argv.argv(), 2);
    EXPECT_EQ(args.get_opt("lockstep-records", 4096), 1);
  }
  {
    Argv argv({"c2b", "dse"});
    Args args(argv.argc(), argv.argv(), 2);
    EXPECT_FALSE(args.get_opt("lockstep-records", 4096).has_value());
  }
}

TEST(CliArgsTest, LockstepRecordsNumericErrorNamesTheFlag) {
  Argv argv({"c2b", "dse", "--lockstep-records=soon"});
  Args args(argv.argc(), argv.argv(), 2);
  try {
    args.get_opt("lockstep-records", 4096);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--lockstep-records"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("soon"), std::string::npos);
  }
}

TEST(CliArgsTest, NoSimdIsBooleanAndDoesNotEatTheNextFlag) {
  // `--no-simd` is registered boolean at the CLI entry point, so a value
  // flag that follows must still get its own value.
  Argv argv({"c2b", "dse", "--no-simd", "--lockstep-records", "64"});
  Args args(argv.argc(), argv.argv(), 2, {"no-simd"});
  EXPECT_EQ(args.get("no-simd", std::string("false")), "true");
  EXPECT_EQ(args.get_opt("lockstep-records", 4096), 64);
  args.finish();
}

TEST(CliArgsTest, UnqueriedBatchFlagsAreUnknownToOtherCommands) {
  // Commands that never query the batch flags reject them via finish(),
  // naming both — the `c2b model --no-simd` typo fails loudly.
  Argv argv({"c2b", "model", "--no-simd", "--lockstep-records=64"});
  Args args(argv.argc(), argv.argv(), 2, {"no-simd"});
  try {
    args.finish();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown flag"), std::string::npos);
    EXPECT_NE(what.find("--no-simd"), std::string::npos);
    EXPECT_NE(what.find("--lockstep-records"), std::string::npos);
  }
}

TEST(CliArgsTest, BudgetFlagsParseValueAndEqualsForms) {
  // The constraint budgets on `dse`/`aps` are plain double flags; both
  // spellings must parse, and absence leaves the caller's default.
  {
    Argv argv({"c2b", "dse", "--power-budget", "4.5", "--bw-budget=120",
               "--noc-budget", "80"});
    Args args(argv.argc(), argv.argv(), 2);
    EXPECT_DOUBLE_EQ(args.get("power-budget", 0.0), 4.5);
    EXPECT_DOUBLE_EQ(args.get("bw-budget", 0.0), 120.0);
    EXPECT_DOUBLE_EQ(args.get("noc-budget", 0.0), 80.0);
    args.finish();
  }
  {
    Argv argv({"c2b", "dse"});
    Args args(argv.argc(), argv.argv(), 2);
    EXPECT_FALSE(args.has("power-budget"));
    EXPECT_DOUBLE_EQ(args.get("power-budget", 7.0), 7.0);
  }
}

TEST(CliArgsTest, BudgetFlagNumericErrorsNameTheFlag) {
  // Non-numeric budgets must throw naming the offending flag and value —
  // main() turns that into a clear message and exit 1 (the non-positive
  // case is validated by the command itself with exit 2).
  Argv argv({"c2b", "dse", "--power-budget=cheap", "--bw-budget", "plenty",
             "--noc-budget=wide"});
  Args args(argv.argc(), argv.argv(), 2);
  for (const char* flag : {"power-budget", "bw-budget", "noc-budget"}) {
    try {
      args.get(flag, 0.0);
      FAIL() << "expected invalid_argument for --" << flag;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(std::string("--") + flag),
                std::string::npos);
    }
  }
}

TEST(CliArgsTest, ParetoIsBooleanAndDoesNotEatTheNextFlag) {
  Argv argv({"c2b", "dse", "--pareto", "--power-budget", "4.0"});
  Args args(argv.argc(), argv.argv(), 2, {"pareto"});
  EXPECT_TRUE(args.has("pareto"));
  EXPECT_DOUBLE_EQ(args.get("power-budget", 0.0), 4.0);
  args.mark_used("pareto");
  args.finish();
}

TEST(CliArgsTest, RejectsNonFlagTokens) {
  Argv argv({"c2b", "dse", "stencil"});
  EXPECT_THROW(Args(argv.argc(), argv.argv(), 2), std::invalid_argument);
}

TEST(CliArgsTest, MissingValueThrows) {
  Argv argv({"c2b", "dse", "--workload"});
  EXPECT_THROW(Args(argv.argc(), argv.argv(), 2), std::invalid_argument);
}

}  // namespace
}  // namespace c2b::cli
