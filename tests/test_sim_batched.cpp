#include "c2b/sim/system/batched.h"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "c2b/trace/chunk_store.h"
#include "c2b/trace/generators.h"

namespace c2b {
namespace {

ZipfStreamGenerator::Params zipf_params(std::uint64_t seed, double f_mem = 0.4) {
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 1 << 10;
  p.zipf_exponent = 0.9;
  p.f_mem = f_mem;
  p.write_ratio = 0.3;
  p.seed = seed;
  return p;
}

void expect_results_bitwise_equal(const sim::SystemResult& a, const sim::SystemResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
    EXPECT_EQ(a.cores[c].memory_accesses, b.cores[c].memory_accesses);
    EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cores[c].cpi),
              std::bit_cast<std::uint64_t>(b.cores[c].cpi));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cores[c].camat.camat_value),
              std::bit_cast<std::uint64_t>(b.cores[c].camat.camat_value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cores[c].camat.concurrency_c),
              std::bit_cast<std::uint64_t>(b.cores[c].camat.concurrency_c));
  }
  EXPECT_EQ(a.hierarchy.dram_accesses, b.hierarchy.dram_accesses);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.hierarchy.l1_miss_ratio),
            std::bit_cast<std::uint64_t>(b.hierarchy.l1_miss_ratio));
}

/// Per-member reference: fresh generator cursors, plain streaming kernel.
sim::SystemResult reference_run(const sim::SystemConfig& config, std::uint64_t seed,
                                std::uint64_t records) {
  std::vector<std::unique_ptr<TraceCursor>> owned;
  std::vector<TraceCursor*> cursors;
  for (std::uint32_t c = 0; c < config.hierarchy.cores; ++c) {
    owned.push_back(std::make_unique<GeneratorTraceCursor>(
        std::make_unique<ZipfStreamGenerator>(zipf_params(seed + c)), records));
    cursors.push_back(owned.back().get());
  }
  return sim::simulate_system_streaming(config, cursors);
}

TEST(SimulateBatched, MembersMatchPerPointRunsBitwise) {
  // Three members with different hardware over the same trace streams: the
  // canonical trace-equivalence-class shape.
  const std::uint64_t kSeed = 71;
  const std::uint64_t kRecords = 12'000;
  std::vector<sim::SystemConfig> configs(3);
  configs[0].core.issue_width = 2;
  configs[0].core.rob_size = 32;
  configs[1].core.issue_width = 4;
  configs[1].core.rob_size = 64;
  configs[2].core.issue_width = 4;
  configs[2].core.rob_size = 128;
  configs[2].hierarchy.l1_geometry.size_bytes = 64 * 1024;

  TraceChunkStore store;
  const std::size_t id = store.add_stream(
      std::make_unique<ZipfStreamGenerator>(zipf_params(kSeed)), kRecords);
  store.set_readers(3);
  std::vector<ChunkCursor> cursors;
  cursors.reserve(3);
  std::vector<std::vector<TraceCursor*>> member_cursors(3);
  for (std::size_t m = 0; m < 3; ++m) {
    cursors.emplace_back(store, id);
    member_cursors[m] = {&cursors.back()};
  }

  const std::vector<sim::SystemResult> batched =
      sim::simulate_system_batched(configs, member_cursors);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    const sim::SystemResult ref = reference_run(configs[m], kSeed, kRecords);
    expect_results_bitwise_equal(batched[m], ref);
  }
  // One generation pass served all three members.
  EXPECT_EQ(store.stats().records_generated, kRecords);
  EXPECT_EQ(store.stats().regen_avoided_records, 2u * kRecords);
}

TEST(SimulateBatched, SingleMemberDegeneratesToStreaming) {
  sim::SystemConfig config;
  config.hierarchy.cores = 2;
  TraceChunkStore store;
  std::vector<std::size_t> ids;
  for (std::uint32_t c = 0; c < 2; ++c)
    ids.push_back(store.add_stream(
        std::make_unique<ZipfStreamGenerator>(zipf_params(80 + c)), 8'000));
  store.set_readers(1);
  ChunkCursor c0(store, ids[0]), c1(store, ids[1]);
  const std::vector<sim::SystemResult> batched =
      sim::simulate_system_batched({config}, {{&c0, &c1}});
  ASSERT_EQ(batched.size(), 1u);
  std::vector<std::unique_ptr<TraceCursor>> owned;
  std::vector<TraceCursor*> cursors;
  for (std::uint32_t c = 0; c < 2; ++c) {
    owned.push_back(std::make_unique<GeneratorTraceCursor>(
        std::make_unique<ZipfStreamGenerator>(zipf_params(80 + c)), 8'000));
    cursors.push_back(owned.back().get());
  }
  expect_results_bitwise_equal(batched[0], sim::simulate_system_streaming(config, cursors));
}

TEST(SimulateBatched, MembersFinishingAtDifferentTimesStayCorrect) {
  // Width-8 member races far ahead in simulated work per record; the
  // lockstep driver must keep results right while members drain at very
  // different event rates, including after the fastest one finishes.
  const std::uint64_t kSeed = 90;
  const std::uint64_t kRecords = 10'000;
  std::vector<sim::SystemConfig> configs(2);
  configs[0].core.issue_width = 1;
  configs[0].core.rob_size = 16;
  configs[1].core.issue_width = 8;
  configs[1].core.rob_size = 192;
  TraceChunkStore store(/*chunk_records=*/512);
  const std::size_t id = store.add_stream(
      std::make_unique<ZipfStreamGenerator>(zipf_params(kSeed)), kRecords);
  store.set_readers(2);
  ChunkCursor a(store, id), b(store, id);
  // Tiny lockstep quantum to force many driver rounds.
  sim::BatchedReplayOptions options;
  options.lockstep_records = 64;
  const std::vector<sim::SystemResult> batched =
      sim::simulate_system_batched(configs, {{&a}, {&b}}, options);
  for (std::size_t m = 0; m < 2; ++m)
    expect_results_bitwise_equal(batched[m], reference_run(configs[m], kSeed, kRecords));
}

TEST(SimulateBatched, RejectsMalformedInputs) {
  sim::SystemConfig config;
  TraceChunkStore store;
  const std::size_t id =
      store.add_stream(std::make_unique<ZipfStreamGenerator>(zipf_params(99)), 100);
  store.set_readers(1);
  ChunkCursor cursor(store, id);
  EXPECT_THROW(sim::simulate_system_batched({}, {}), std::invalid_argument);
  EXPECT_THROW(sim::simulate_system_batched({config}, {{&cursor}, {&cursor}}),
               std::invalid_argument);
  sim::BatchedReplayOptions zero;
  zero.lockstep_records = 0;
  EXPECT_THROW(sim::simulate_system_batched({config}, {{&cursor}}, zero),
               std::invalid_argument);
}

TEST(SystemReplay, SlicedAdvanceMatchesOneShot) {
  sim::SystemConfig config;
  config.core.issue_width = 8;
  const auto p = zipf_params(101);
  GeneratorTraceCursor one_shot(std::make_unique<ZipfStreamGenerator>(p), 9'000);
  std::vector<TraceCursor*> one_shot_cursors{&one_shot};
  const sim::SystemResult reference =
      sim::simulate_system_streaming(config, one_shot_cursors);

  GeneratorTraceCursor sliced(std::make_unique<ZipfStreamGenerator>(p), 9'000);
  sim::SystemReplay replay(config, {&sliced});
  // Ragged slice sizes, including zero-progress targets below the current
  // consumption; every slicing must be invisible to the result.
  std::uint64_t target = 0;
  const std::uint64_t steps[] = {1, 7, 100, 3, 4096, 50, 9'000};
  std::size_t i = 0;
  while (!replay.finished()) {
    target += steps[i % (sizeof(steps) / sizeof(steps[0]))];
    ++i;
    replay.advance_until(target);
    ASSERT_LE(replay.consumed_records(), 9'000u);
  }
  sim::SystemReplay done = std::move(replay);  // move keeps the run usable
  EXPECT_TRUE(done.finished());
  expect_results_bitwise_equal(done.result(), reference);
}

}  // namespace
}  // namespace c2b
