#include <gtest/gtest.h>

#include "c2b/sim/dram/dram.h"
#include "c2b/sim/noc/noc.h"

namespace c2b::sim {
namespace {

DramConfig small_dram() {
  return {.banks = 2, .lines_per_row = 4, .t_cas = 10, .t_rcd = 10, .t_rp = 10, .t_bus = 2};
}

TEST(Dram, FirstAccessPaysActivate) {
  DramModel dram(small_dram());
  // Empty bank: tRCD + tCAS + bus = 22.
  EXPECT_EQ(dram.access(0, 100), 100u + 10 + 10 + 2);
  EXPECT_EQ(dram.stats().row_empty, 1u);
}

TEST(Dram, RowHitIsCheap) {
  DramModel dram(small_dram());
  const std::uint64_t first = dram.access(0, 0);
  // Line 1 is in the same 4-line row: only tCAS + bus once the bank is free.
  const std::uint64_t second = dram.access(1, first);
  EXPECT_EQ(second - first, 10u + 2u);
  EXPECT_EQ(dram.stats().row_hits, 1u);
}

TEST(Dram, RowConflictPaysPrecharge) {
  DramModel dram(small_dram());
  const std::uint64_t first = dram.access(0, 0);  // row 0, bank 0
  // Row 2 also maps to bank 0 (rows rotate across 2 banks): conflict.
  const std::uint64_t second = dram.access(2 * 4, first);
  EXPECT_EQ(second - first, 10u + 10u + 10u + 2u);
  EXPECT_EQ(dram.stats().row_conflicts, 1u);
}

TEST(Dram, BankParallelismOverlapsActivates) {
  DramModel dram(small_dram());
  // Rows 0 and 1 map to different banks; issued together they overlap all
  // but the serialized bus bursts.
  const std::uint64_t a = dram.access(0, 0);
  const std::uint64_t b = dram.access(4, 0);
  EXPECT_EQ(a, 22u);
  EXPECT_EQ(b, 24u);  // same column timing, waits only for the bus
}

TEST(Dram, BusSerializesBursts) {
  DramModel dram(small_dram());
  dram.access(0, 0);
  dram.access(1, 0);
  dram.access(2, 0);
  // All in one row; each burst occupies the bus for t_bus.
  EXPECT_EQ(dram.stats().busy_cycle_estimate, 3u * 2u);
}

TEST(Dram, AverageLatencyTracksLoad) {
  DramModel unloaded(small_dram());
  unloaded.access(0, 0);
  DramModel loaded(small_dram());
  for (int i = 0; i < 64; ++i) loaded.access(0, 0);  // all at cycle 0
  EXPECT_GT(loaded.stats().average_latency(), unloaded.stats().average_latency());
}

TEST(Dram, StatsRatios) {
  DramModel dram(small_dram());
  dram.access(0, 0);
  dram.access(1, 100);
  dram.access(2, 200);
  const DramStats& s = dram.stats();
  EXPECT_EQ(s.accesses, 3u);
  // Lines 1 and 2 sit in line-0's 4-line row: two row hits out of three.
  EXPECT_NEAR(s.row_hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(Dram, InvalidConfigThrows) {
  DramConfig bad = small_dram();
  bad.banks = 0;
  EXPECT_THROW(DramModel{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// NoC

TEST(Noc, ZeroDistanceToSelf) {
  MeshNoc noc({.nodes = 16, .hop_latency = 2, .injection_latency = 1,
               .congestion_per_load = 0.0});
  EXPECT_EQ(noc.latency(5, 5), 1u);  // injection only
}

TEST(Noc, ManhattanHops) {
  MeshNoc noc({.nodes = 16, .hop_latency = 2, .injection_latency = 1,
               .congestion_per_load = 0.0});
  // 4x4 mesh: node 0 is (0,0), node 15 is (3,3) -> 6 hops.
  EXPECT_EQ(noc.latency(0, 15), 1u + 6u * 2u);
  // node 0 -> node 3 is (3,0): 3 hops.
  EXPECT_EQ(noc.latency(0, 3), 1u + 3u * 2u);
}

TEST(Noc, RoundTripIsTwiceOneWay) {
  MeshNoc noc({.nodes = 16, .hop_latency = 2, .injection_latency = 1,
               .congestion_per_load = 0.0});
  EXPECT_EQ(noc.round_trip(0, 3), 2u * noc.latency(0, 3));
}

TEST(Noc, CongestionGrowsWithTraffic) {
  MeshNoc noc({.nodes = 16, .hop_latency = 2, .injection_latency = 1,
               .congestion_per_load = 1.0});
  const std::uint64_t before = noc.latency(0, 15);
  for (int i = 0; i < 100; ++i) noc.round_trip(0, 15);
  EXPECT_GT(noc.latency(0, 15), before);
  EXPECT_NEAR(noc.average_hops(), 6.0, 1e-9);
}

TEST(Noc, SliceInterleaving) {
  MeshNoc noc({.nodes = 8});
  EXPECT_EQ(noc.slice_of(0), 0u);
  EXPECT_EQ(noc.slice_of(7), 7u);
  EXPECT_EQ(noc.slice_of(8), 0u);
}

TEST(Noc, NodeOutOfRangeThrows) {
  MeshNoc noc({.nodes = 4});
  EXPECT_THROW((void)noc.latency(0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace c2b::sim
