#include "c2b/exec/disk_tier.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace c2b::exec {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on teardown.
class DiskTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("disk_tier_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path dir_;
};

SimCache::Value value_for(std::size_t i) {
  return {static_cast<double>(i) * 1.5 + 0.25, static_cast<std::uint64_t>(i) * 7};
}

std::string key_for(std::size_t i) { return "design-key-" + std::to_string(i); }

std::vector<fs::path> segment_files(const fs::path& dir) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (entry.path().extension() == ".c2b") out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void dump(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Test-local encoder mirroring the on-disk record format, so the suite can
// craft stale-schema and corrupt records byte by byte. Kept deliberately
// independent of the implementation: if the format drifts, these tests
// fail loudly instead of following along.
std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i)
    hash = (hash ^ static_cast<unsigned char>(data[i])) * 1099511628211ull;
  return hash;
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::string encode(const std::string& key, const SimCache::Value& value,
                   std::uint32_t schema) {
  std::string out = "C2BR";
  append_u32(out, schema);
  append_u32(out, static_cast<std::uint32_t>(key.size()));
  std::uint64_t time_bits = 0;
  std::memcpy(&time_bits, &value.time, sizeof time_bits);
  append_u64(out, time_bits);
  append_u64(out, value.memory_accesses);
  out.append(key);
  append_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

TEST_F(DiskTierTest, RoundTripAcrossReopen) {
  constexpr std::size_t kEntries = 200;
  {
    auto tier = DiskTier::open(dir());
    ASSERT_NE(tier, nullptr);
    for (std::size_t i = 0; i < kEntries; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
    EXPECT_EQ(tier->stats().appended, kEntries);
  }  // destructor drains + closes

  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->entries(), kEntries);
  EXPECT_EQ(tier->stats().drops, 0u);
  for (std::size_t i = 0; i < kEntries; ++i) {
    const auto hit = tier->find(key_for(i));
    ASSERT_TRUE(hit.has_value()) << key_for(i);
    EXPECT_EQ(hit->time, value_for(i).time);
    EXPECT_EQ(hit->memory_accesses, value_for(i).memory_accesses);
  }
  EXPECT_FALSE(tier->find("never-inserted").has_value());
}

TEST_F(DiskTierTest, ReEnqueueOfKnownKeyDoesNotGrowSegments) {
  {
    auto tier = DiskTier::open(dir());
    ASSERT_NE(tier, nullptr);
    for (std::size_t i = 0; i < 50; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
  }
  std::uintmax_t size_after_fill = 0;
  for (const auto& path : segment_files(dir_)) size_after_fill += fs::file_size(path);

  {
    // A warm rerun re-enqueues everything it computes or replays; the
    // index dedup must turn all of it into no-ops.
    auto tier = DiskTier::open(dir());
    ASSERT_NE(tier, nullptr);
    for (std::size_t i = 0; i < 50; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
    EXPECT_EQ(tier->stats().appended, 0u);
  }
  std::uintmax_t size_after_rerun = 0;
  for (const auto& path : segment_files(dir_)) size_after_rerun += fs::file_size(path);
  EXPECT_EQ(size_after_fill, size_after_rerun);
}

TEST_F(DiskTierTest, TruncatedTailDroppedRestSurvives) {
  {
    auto tier = DiskTier::open(dir());
    ASSERT_NE(tier, nullptr);
    for (std::size_t i = 0; i < 64; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
  }
  // Shear the tail of every segment mid-record (drop the last 5 bytes —
  // inside the checksum trailer, so the final record can never validate).
  std::size_t sheared = 0;
  for (const auto& path : segment_files(dir_)) {
    const auto size = fs::file_size(path);
    if (size < 6) continue;
    fs::resize_file(path, size - 5);
    ++sheared;
  }
  ASSERT_GT(sheared, 0u);

  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  EXPECT_GE(tier->stats().drops, sheared);  // >= one torn record per sheared file
  EXPECT_LT(tier->entries(), 64u);
  // Every record that did survive must carry its exact original value.
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto hit = tier->find(key_for(i));
    if (!hit.has_value()) continue;
    ++recovered;
    EXPECT_EQ(hit->time, value_for(i).time);
    EXPECT_EQ(hit->memory_accesses, value_for(i).memory_accesses);
  }
  EXPECT_EQ(recovered, tier->entries());
  EXPECT_GE(recovered, 64u - 2u * sheared);  // at most the torn tail records lost
}

TEST_F(DiskTierTest, BitFlipFuzzNeverLoadsAWrongValue) {
  {
    auto tier = DiskTier::open(dir(), DiskTier::Options{.segment_count = 1,
                                                        .queue_limit = 8192});
    ASSERT_NE(tier, nullptr);
    for (std::size_t i = 0; i < 16; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
  }
  const auto paths = segment_files(dir_);
  ASSERT_EQ(paths.size(), 1u);
  const std::string pristine = slurp(paths[0]);
  ASSERT_GT(pristine.size(), 0u);

  // Flip one bit at a sampled byte position, reload, and require: no
  // crash, and every key that still resolves carries its exact original
  // value — corruption may lose records, never corrupt them.
  for (std::size_t pos = 0; pos < pristine.size(); pos += 7) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    dump(paths[0], bytes);
    auto tier = DiskTier::open(dir());
    ASSERT_NE(tier, nullptr) << "flip at byte " << pos;
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      const auto hit = tier->find(key_for(i));
      if (!hit.has_value()) continue;
      if (hit->time != value_for(i).time ||
          hit->memory_accesses != value_for(i).memory_accesses)
        ++wrong;
    }
    EXPECT_EQ(wrong, 0u) << "flip at byte " << pos;
    EXPECT_GE(tier->stats().drops, 1u) << "flip at byte " << pos;
    EXPECT_LT(tier->entries(), 16u) << "flip at byte " << pos;
  }
  dump(paths[0], pristine);
}

TEST_F(DiskTierTest, StaleSchemaRecordSkippedWithCountedDrop) {
  // Hand-write a segment: [stale-schema record][current record]. The
  // stale one has a VALID checksum — only its version says "old build".
  std::string bytes = encode("stale-key", {1.0, 1}, kSimCacheSchemaVersion + 1);
  bytes += encode("current-key", {2.5, 9}, kSimCacheSchemaVersion);
  fs::create_directories(dir_);
  dump(dir_ / DiskTier::segment_name(0), bytes);

  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->stats().drops, 1u);
  EXPECT_FALSE(tier->find("stale-key").has_value());
  const auto hit = tier->find("current-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 2.5);
  EXPECT_EQ(hit->memory_accesses, 9u);
}

TEST_F(DiskTierTest, GarbageBetweenRecordsResyncsAtNextMagic) {
  std::string bytes = encode("first", {1.0, 1}, kSimCacheSchemaVersion);
  bytes += "this is not a record C2.. nope";
  bytes += encode("second", {2.0, 2}, kSimCacheSchemaVersion);
  fs::create_directories(dir_);
  dump(dir_ / DiskTier::segment_name(0), bytes);

  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  EXPECT_TRUE(tier->find("first").has_value());
  EXPECT_TRUE(tier->find("second").has_value());
  EXPECT_GE(tier->stats().drops, 1u);
}

TEST_F(DiskTierTest, ZeroQueueLimitDropsAppendsButServesFromRam) {
  auto tier = DiskTier::open(dir(), DiskTier::Options{.segment_count = 2,
                                                      .queue_limit = 0});
  ASSERT_NE(tier, nullptr);
  for (std::size_t i = 0; i < 10; ++i) tier->enqueue(key_for(i), value_for(i));
  tier->flush();
  // Overflowed appends are dropped and counted, but the RAM index still
  // serves the values for the rest of this run.
  EXPECT_EQ(tier->stats().drops, 10u);
  EXPECT_EQ(tier->stats().appended, 0u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(tier->find(key_for(i)).has_value());
  tier.reset();

  auto reopened = DiskTier::open(dir());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->entries(), 0u);  // nothing was persisted
}

TEST_F(DiskTierTest, OpenOnAFileReturnsNull) {
  fs::create_directories(dir_.parent_path());
  dump(dir_, "not a directory");
  EXPECT_EQ(DiskTier::open(dir()), nullptr);
}

TEST_F(DiskTierTest, FindManyFillsOnlyRequestedSlots) {
  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  tier->enqueue("a", {1.0, 1});
  tier->enqueue("b", {2.0, 2});
  const std::vector<std::string> keys{"a", "absent", "b", "ignored"};
  std::vector<std::optional<SimCache::Value>> out(keys.size());
  std::uint64_t found = 0;
  std::uint64_t missed = 0;
  tier->find_many(keys, {0, 1, 2}, out, found, missed);  // slot 3 not probed
  EXPECT_EQ(found, 2u);
  EXPECT_EQ(missed, 1u);
  ASSERT_TRUE(out[0].has_value());
  EXPECT_EQ(out[0]->time, 1.0);
  EXPECT_FALSE(out[1].has_value());
  ASSERT_TRUE(out[2].has_value());
  EXPECT_EQ(out[2]->memory_accesses, 2u);
  EXPECT_FALSE(out[3].has_value());
}

TEST_F(DiskTierTest, KillMidFlushThenRecoverServesOnlyExactValues) {
  // Crash-safety end to end: a child process appends continuously and is
  // SIGKILLed mid-write; recovery in the parent must never surface a
  // record whose value disagrees with its key — torn bytes at the tail
  // are dropped (counted), everything before them replays exactly.
  int ready_pipe[2];
  ASSERT_EQ(pipe(ready_pipe), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(ready_pipe[0]);
    auto tier = DiskTier::open(dir(), DiskTier::Options{.segment_count = 2,
                                                        .queue_limit = 8192});
    if (tier == nullptr) _exit(1);
    // First tranche + flush, then tell the parent we are mid-stream.
    for (std::size_t i = 0; i < 100; ++i) tier->enqueue(key_for(i), value_for(i));
    tier->flush();
    const char byte = 'r';
    (void)!write(ready_pipe[1], &byte, 1);
    // Keep appending until killed.
    for (std::size_t i = 100;; ++i) {
      tier->enqueue(key_for(i), value_for(i));
      if (i % 64 == 0) tier->flush();
    }
  }
  close(ready_pipe[1]);
  char byte = 0;
  ASSERT_EQ(read(ready_pipe[0], &byte, 1), 1);
  close(ready_pipe[0]);
  // Let the child write a while longer, then kill it mid-flight.
  usleep(20'000);
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  auto tier = DiskTier::open(dir());
  ASSERT_NE(tier, nullptr);
  // The flushed tranche must be fully recovered...
  for (std::size_t i = 0; i < 100; ++i) {
    const auto hit = tier->find(key_for(i));
    ASSERT_TRUE(hit.has_value()) << key_for(i);
    EXPECT_EQ(hit->time, value_for(i).time);
  }
  // ...and whatever else survived must be value-exact.
  for (std::size_t i = 100; i < 100'000; ++i) {
    const auto hit = tier->find(key_for(i));
    if (!hit.has_value()) continue;
    EXPECT_EQ(hit->time, value_for(i).time) << key_for(i);
    EXPECT_EQ(hit->memory_accesses, value_for(i).memory_accesses) << key_for(i);
  }
}

}  // namespace
}  // namespace c2b::exec
