#include "c2b/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "c2b/obs/obs.h"

namespace c2b::obs {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    set_span_sample_period(1);
    clear_trace_events();
  }
};

TEST_F(ObsTraceTest, SpanRecordsOneEventPerScope) {
  { C2B_SPAN("test/one"); }
  { C2B_SPAN("test/two"); }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test/one");
  EXPECT_STREQ(events[1].name, "test/two");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
}

TEST_F(ObsTraceTest, NestedSpansCarryDepthAndContainment) {
  {
    C2B_SPAN("test/outer");
    {
      C2B_SPAN("test/middle");
      { C2B_SPAN("test/inner"); }
    }
  }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer starts first, inner last.
  EXPECT_STREQ(events[0].name, "test/outer");
  EXPECT_STREQ(events[1].name, "test/middle");
  EXPECT_STREQ(events[2].name, "test/inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 2u);
  // Containment: the outer span covers its children.
  const std::uint64_t outer_end = events[0].start_ns + events[0].duration_ns;
  const std::uint64_t inner_end = events[2].start_ns + events[2].duration_ns;
  EXPECT_GE(outer_end, inner_end);
}

TEST_F(ObsTraceTest, SpanArgIsExported) {
  { C2B_SPAN_ARG("test/arg", 42u); }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg, 42u);

  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"v\":42"), std::string::npos);
}

TEST_F(ObsTraceTest, ChromeJsonHasCompleteEvents) {
  { C2B_SPAN("test/json"); }
  const std::string json = chrome_trace_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/json\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTraceTest, ThreadsGetDistinctIds) {
  { C2B_SPAN("test/main_thread"); }
  std::thread worker([] { C2B_SPAN("test/worker_thread"); });
  worker.join();
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST_F(ObsTraceTest, SamplingRecordsEveryNth) {
  set_span_sample_period(4);
  for (int i = 0; i < 16; ++i) {
    C2B_SPAN("test/sampled");
  }
  set_span_sample_period(1);
  const std::vector<TraceEvent> events = collect_trace_events();
  // 16 spans at period 4: exactly 4 recorded, whatever the phase of this
  // thread's span counter.
  EXPECT_EQ(events.size(), 4u);
}

TEST_F(ObsTraceTest, RingWrapKeepsNewestAndCountsDropped) {
  // Capacity applies to buffers created later, so exercise it on a fresh
  // thread.
  set_trace_buffer_capacity(8);
  std::thread worker([] {
    for (int i = 0; i < 20; ++i) {
      C2B_SPAN("test/wrap");
    }
  });
  worker.join();
  set_trace_buffer_capacity(1 << 16);
  const std::vector<TraceEvent> events = collect_trace_events();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_GE(dropped_trace_events(), 12u);
}

TEST_F(ObsTraceTest, DisabledRuntimeRecordsNothing) {
  set_enabled(false);
  { C2B_SPAN("test/disabled"); }
  set_enabled(true);
  EXPECT_TRUE(collect_trace_events().empty());
}

}  // namespace
}  // namespace c2b::obs
