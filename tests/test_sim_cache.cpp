#include "c2b/sim/cache/cache.h"

#include <gtest/gtest.h>

namespace c2b::sim {
namespace {

CacheGeometry tiny_geometry(std::uint64_t size = 512, std::uint32_t assoc = 2) {
  return {.size_bytes = size, .line_bytes = 64, .associativity = assoc};
}

TEST(CacheGeometry, DerivedQuantities) {
  const CacheGeometry g{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8};
  EXPECT_EQ(g.lines(), 512u);
  EXPECT_EQ(g.sets(), 64u);
  g.validate();
}

TEST(CacheGeometry, InvalidGeometriesThrow) {
  CacheGeometry bad_line{.size_bytes = 1024, .line_bytes = 48, .associativity = 2};
  EXPECT_THROW(bad_line.validate(), std::invalid_argument);
  CacheGeometry too_small{.size_bytes = 32, .line_bytes = 64, .associativity = 1};
  EXPECT_THROW(too_small.validate(), std::invalid_argument);
  CacheGeometry ragged{.size_bytes = 192, .line_bytes = 64, .associativity = 2};
  EXPECT_THROW(ragged.validate(), std::invalid_argument);
}

TEST(CacheArray, MissThenHit) {
  CacheArray cache(tiny_geometry());
  EXPECT_FALSE(cache.probe(0));
  cache.fill(0);
  EXPECT_TRUE(cache.probe(0));
  EXPECT_TRUE(cache.probe(63));  // same line
  EXPECT_FALSE(cache.probe(64));
  EXPECT_EQ(cache.probe_count(), 4u);
  EXPECT_EQ(cache.hit_count(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_ratio(), 0.5);
}

TEST(CacheArray, LruEvictionOrder) {
  // 2-way, 4 sets (512B): lines mapping to set 0 are 0, 4, 8, ...
  CacheArray cache(tiny_geometry());
  const std::uint64_t set_stride = 4 * 64;  // sets * line
  cache.fill(0 * set_stride);
  cache.fill(1 * set_stride);
  // Touch line 0 so line 1 becomes LRU.
  EXPECT_TRUE(cache.probe(0 * set_stride));
  const auto evicted = cache.fill(2 * set_stride);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->address, 1 * set_stride);
  EXPECT_FALSE(evicted->dirty);
  EXPECT_TRUE(cache.probe(0 * set_stride));
  EXPECT_FALSE(cache.probe(1 * set_stride));
  EXPECT_TRUE(cache.probe(2 * set_stride));
}

TEST(CacheArray, FillExistingLineDoesNotEvict) {
  CacheArray cache(tiny_geometry());
  cache.fill(0);
  EXPECT_FALSE(cache.fill(0).has_value());
}

TEST(CacheArray, InvalidateRemovesLine) {
  CacheArray cache(tiny_geometry());
  cache.fill(0);
  EXPECT_TRUE(cache.invalidate(0));
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.invalidate(0));  // already gone
}

TEST(CacheArray, WorkingSetLargerThanCacheThrashes) {
  CacheArray cache(tiny_geometry(512, 2));  // 8 lines
  // Stream over 32 lines repeatedly: almost everything misses.
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line = 0; line < 32; ++line) {
      if (!cache.probe(line * 64)) cache.fill(line * 64);
    }
  }
  EXPECT_GT(cache.miss_ratio(), 0.9);
}

TEST(CacheArray, WorkingSetWithinCacheHitsAfterWarmup) {
  CacheArray cache(tiny_geometry(512, 2));  // 8 lines
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line = 0; line < 8; ++line) {
      if (!cache.probe(line * 64)) cache.fill(line * 64);
    }
  }
  // Only the 8 cold misses.
  EXPECT_EQ(cache.probe_count() - cache.hit_count(), 8u);
}

TEST(BankPortScheduler, SameCycleUpToPortLimit) {
  BankPortScheduler sched(1, 2);
  EXPECT_EQ(sched.schedule(0, 10), 10u);
  EXPECT_EQ(sched.schedule(0, 10), 10u);   // second port
  EXPECT_EQ(sched.schedule(0, 10), 11u);   // spills to next cycle
  EXPECT_GT(sched.contention_cycles(), 0u);
}

TEST(BankPortScheduler, DifferentBanksDoNotConflict) {
  BankPortScheduler sched(4, 1);
  EXPECT_EQ(sched.schedule(0, 5), 5u);
  EXPECT_EQ(sched.schedule(1, 5), 5u);
  EXPECT_EQ(sched.schedule(2, 5), 5u);
  EXPECT_EQ(sched.schedule(3, 5), 5u);
  EXPECT_EQ(sched.contention_cycles(), 0u);
}

TEST(BankPortScheduler, LaterArrivalResetsWindow) {
  BankPortScheduler sched(1, 1);
  EXPECT_EQ(sched.schedule(0, 3), 3u);
  EXPECT_EQ(sched.schedule(0, 10), 10u);  // no phantom backlog
}

TEST(Mshr, PrimaryThenMergedSecondary) {
  MshrFile mshr(4);
  const auto primary = mshr.request(7, 100);
  EXPECT_FALSE(primary.merged);
  EXPECT_EQ(primary.start_cycle, 100u);
  mshr.complete(7, 150);
  const auto secondary = mshr.request(7, 110);
  EXPECT_TRUE(secondary.merged);
  EXPECT_EQ(secondary.merged_completion, 150u);
  EXPECT_EQ(mshr.merge_count(), 1u);
}

TEST(Mshr, EntryRetiresAfterCompletion) {
  MshrFile mshr(2);
  mshr.request(1, 0);
  mshr.complete(1, 50);
  // At cycle 60 the entry is gone; a new request to the same line is primary.
  const auto again = mshr.request(1, 60);
  EXPECT_FALSE(again.merged);
}

TEST(Mshr, FullFileDelaysService) {
  MshrFile mshr(2);
  mshr.request(1, 0);
  mshr.complete(1, 100);
  mshr.request(2, 0);
  mshr.complete(2, 200);
  // Third distinct miss at cycle 10 must wait for the earliest retire (100).
  const auto grant = mshr.request(3, 10);
  EXPECT_FALSE(grant.merged);
  EXPECT_EQ(grant.start_cycle, 100u);
  EXPECT_EQ(mshr.full_stall_events(), 1u);
}

TEST(Mshr, CapacityBoundsOutstanding) {
  MshrFile mshr(1);
  mshr.request(1, 0);
  mshr.complete(1, 30);
  const auto g2 = mshr.request(2, 5);
  EXPECT_GE(g2.start_cycle, 30u);
}

TEST(Mshr, MergeBeforePrimaryCompletionIsKnown) {
  // A secondary miss can arrive while the primary is still being serviced
  // (its completion not yet recorded): it merges with the 'unknown'
  // sentinel, and the caller handles the zero completion.
  MshrFile mshr(4);
  mshr.request(7, 100);
  const auto secondary = mshr.request(7, 105);
  EXPECT_TRUE(secondary.merged);
  EXPECT_EQ(secondary.merged_completion, 0u);
  EXPECT_EQ(mshr.merge_count(), 1u);
  EXPECT_EQ(mshr.in_flight(), 1u);  // merged requests share one entry
}

TEST(Mshr, CompleteWithoutInFlightEntryAsserts) {
  MshrFile mshr(2);
  // Nothing requested at all.
  EXPECT_THROW(mshr.complete(42, 10), std::logic_error);
  mshr.request(1, 0);
  mshr.complete(1, 30);
  // The entry's completion is already known: a second complete() has no
  // unknown-completion entry to fill.
  EXPECT_THROW(mshr.complete(1, 40), std::logic_error);
  // After the entry retires (cycle 50 > 30) the line is gone entirely.
  mshr.request(2, 50);
  EXPECT_THROW(mshr.complete(1, 60), std::logic_error);
}

TEST(Mshr, CompletionCycleZeroRejected) {
  MshrFile mshr(1);
  mshr.request(1, 0);
  EXPECT_THROW(mshr.complete(1, 0), std::invalid_argument);
}

TEST(Mshr, FullFileWithUnknownCompletionsOverwritesOldest) {
  // Degenerate flow: the file fills up before any primary records its
  // completion. There is no completion to wait for, so the oldest entry is
  // overwritten to keep state bounded — and the overwritten line loses its
  // merge target.
  MshrFile mshr(2);
  mshr.request(1, 0);
  mshr.request(2, 0);
  const auto grant = mshr.request(3, 10);
  EXPECT_FALSE(grant.merged);
  EXPECT_EQ(grant.start_cycle, 10u);  // nothing retires, so no extra delay
  EXPECT_EQ(mshr.full_stall_events(), 1u);
  EXPECT_EQ(mshr.in_flight(), 2u);  // bounded: line 1 was dropped
  // Line 2 is still in flight and merges; the dropped line 1 cannot be
  // completed any more.
  EXPECT_TRUE(mshr.request(2, 11).merged);
  EXPECT_THROW(mshr.complete(1, 100), std::logic_error);
}

}  // namespace
}  // namespace c2b::sim
