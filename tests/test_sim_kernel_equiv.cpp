// Kernel-equivalence stress tests (ctest label: perf, excluded from the
// quick suite). The event-driven cycle-skipping kernel must be observably
// indistinguishable from the retained per-cycle reference kernel — every
// counter and every derived double bit-identical — and the streaming
// replay path must stay O(chunk) in resident trace memory even on a
// 10M-instruction window.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "c2b/check/oracles.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/cursor.h"
#include "c2b/trace/generators.h"

namespace c2b {
namespace {

void expect_bits_equal(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

void expect_core_results_identical(const sim::CoreResult& a, const sim::CoreResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.memory_accesses, b.memory_accesses);
  EXPECT_EQ(a.cycles, b.cycles);
  expect_bits_equal(a.cpi, b.cpi, "cpi");
  expect_bits_equal(a.f_mem, b.f_mem, "f_mem");
  EXPECT_EQ(a.camat.accesses, b.camat.accesses);
  EXPECT_EQ(a.camat.misses, b.camat.misses);
  EXPECT_EQ(a.camat.pure_misses, b.camat.pure_misses);
  EXPECT_EQ(a.camat.hit_cycle_count, b.camat.hit_cycle_count);
  EXPECT_EQ(a.camat.hit_access_cycles, b.camat.hit_access_cycles);
  EXPECT_EQ(a.camat.pure_miss_cycle_count, b.camat.pure_miss_cycle_count);
  EXPECT_EQ(a.camat.pure_miss_access_cycles, b.camat.pure_miss_access_cycles);
  EXPECT_EQ(a.camat.memory_active_cycles, b.camat.memory_active_cycles);
  expect_bits_equal(a.camat.amat_value, b.camat.amat_value, "amat");
  expect_bits_equal(a.camat.camat_value, b.camat.camat_value, "camat");
  expect_bits_equal(a.camat.camat_direct, b.camat.camat_direct, "camat_direct");
  expect_bits_equal(a.camat.apc, b.camat.apc, "apc");
  expect_bits_equal(a.camat.concurrency_c, b.camat.concurrency_c, "concurrency_c");
  expect_bits_equal(a.camat.camat_params.hit_concurrency, b.camat.camat_params.hit_concurrency,
                    "hit_concurrency");
  expect_bits_equal(a.camat.camat_params.miss_concurrency, b.camat.camat_params.miss_concurrency,
                    "miss_concurrency");
}

// The full random-configuration sweep (coherence + prefetch + random
// replacement included, field-by-field bitwise diff) is the oracle
// harness's kernel family; run it here at a different seed and a larger
// case count than the `c2b check` default so the perf suite explores
// fresh configurations.
TEST(KernelEquivalence, OracleStressOnRandomConfigs) {
  check::OracleOptions options;
  options.seed = 20'260'805;
  options.kernel_configs = 60;
  const check::OracleReport report = check::run_kernel_equivalence_oracle(options);
  for (const std::string& failure : report.failures) ADD_FAILURE() << failure;
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.checks, 0u);
}

// Deterministic three-way identity on a stall-heavy configuration: event
// kernel vs reference kernel vs streaming replay, every observable bitwise.
TEST(KernelEquivalence, StallHeavyThreeWayBitwiseIdentity) {
  sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 64;
  config.hierarchy.cores = 4;
  config.hierarchy.l1_geometry = {.size_bytes = 8 * 1024, .line_bytes = 64, .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 128 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  config.hierarchy.l1_mshr_entries = 4;
  config.hierarchy.l2_mshr_entries = 8;
  config.hierarchy.dram.banks = 2;
  config.hierarchy.dram.t_cas = 40;
  config.hierarchy.dram.t_bus = 8;

  std::vector<Trace> traces;
  std::vector<std::unique_ptr<TraceCursor>> owned;
  std::vector<TraceCursor*> cursors;
  for (std::uint64_t c = 0; c < config.hierarchy.cores; ++c) {
    ZipfStreamGenerator::Params p;
    p.working_set_lines = 1 << 16;
    p.zipf_exponent = 0.3;
    p.f_mem = 0.35;
    p.seed = 900 + c;
    traces.push_back(ZipfStreamGenerator(p).generate(40'000));
    owned.push_back(std::make_unique<GeneratorTraceCursor>(
        std::make_unique<ZipfStreamGenerator>(p), 40'000, /*chunk_records=*/1024));
    cursors.push_back(owned.back().get());
  }

  const sim::SystemResult event = sim::simulate_system(config, traces);
  const sim::SystemResult reference = sim::simulate_system_reference(config, traces);
  const sim::SystemResult streamed = sim::simulate_system_streaming(config, cursors);

  ASSERT_EQ(event.cores.size(), reference.cores.size());
  ASSERT_EQ(event.cores.size(), streamed.cores.size());
  EXPECT_EQ(event.cycles, reference.cycles);
  EXPECT_EQ(event.cycles, streamed.cycles);
  for (std::size_t c = 0; c < event.cores.size(); ++c) {
    expect_core_results_identical(event.cores[c], reference.cores[c]);
    expect_core_results_identical(event.cores[c], streamed.cores[c]);
  }
  EXPECT_EQ(event.hierarchy.l1_accesses, reference.hierarchy.l1_accesses);
  EXPECT_EQ(event.hierarchy.l2_accesses, reference.hierarchy.l2_accesses);
  EXPECT_EQ(event.hierarchy.dram_accesses, reference.hierarchy.dram_accesses);
  expect_bits_equal(event.hierarchy.l1_miss_ratio, reference.hierarchy.l1_miss_ratio,
                    "l1_miss_ratio");
  expect_bits_equal(event.hierarchy.dram_average_latency,
                    reference.hierarchy.dram_average_latency, "dram_average_latency");
}

// ISSUE acceptance: replaying a 10M-instruction generator window through
// the streaming cursor must keep at most one chunk (<= 64k records)
// resident — the whole point of TraceCursor over materialized vectors.
TEST(KernelEquivalence, TenMillionInstructionStreamingStaysChunkResident) {
  sim::SystemConfig config;
  ZipfStreamGenerator::Params p;
  p.working_set_lines = 512;  // L1-resident so the run is compute-path bound
  p.zipf_exponent = 1.1;
  p.f_mem = 0.01;
  p.seed = 7;
  GeneratorTraceCursor cursor(std::make_unique<ZipfStreamGenerator>(p), 10'000'000);
  std::vector<TraceCursor*> cursors{&cursor};
  const sim::SystemResult result = sim::simulate_system_streaming(config, cursors);
  ASSERT_EQ(result.cores.size(), 1u);
  EXPECT_EQ(result.cores[0].instructions, 10'000'000u);
  EXPECT_LE(cursor.max_resident_records(), 65'536u);
  EXPECT_LE(cursor.max_resident_records(), cursor.chunk_capacity());
}

}  // namespace
}  // namespace c2b
