// Tier-1 wiring of the three differential oracle families. Each test runs
// one family at a fixed seed, so a CI failure replays locally with the
// printed C2B_CHECK_SEED/C2B_CHECK_CASE line. The analytic-vs-sim test
// also exports its tolerance bands as JSON — the artifact CI uploads.

#include "c2b/check/oracles.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "c2b/trace/workloads.h"

namespace c2b::check {
namespace {

std::string joined(const std::vector<std::string>& failures) {
  std::ostringstream os;
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

TEST(CheckOracles, AnalyticVsSimWithinToleranceBands) {
  OracleOptions options;
  options.seed = 42;
  const std::string bands_path =
      (std::filesystem::path(testing::TempDir()) / "c2b_tolerance_bands.json").string();

  const OracleReport report = run_analytic_vs_sim_oracle(options);
  EXPECT_TRUE(report.passed()) << joined(report.failures);
  // One asserted band per built-in workload, every one exercised.
  EXPECT_EQ(report.bands.size(), workload_catalog().size());
  for (const ToleranceBand& band : report.bands) {
    EXPECT_GT(band.samples, 0u) << band.workload;
    EXPECT_TRUE(band.passed) << band.workload << " mean " << band.mean_abs_rel_error
                             << " max " << band.max_abs_rel_error;
  }

  ASSERT_TRUE(write_tolerance_bands_json(bands_path, report.bands));
  std::ifstream in(bands_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"workload\""), std::string::npos);
  EXPECT_NE(contents.str().find("mean_abs_rel_error"), std::string::npos);
  std::filesystem::remove(bands_path);
}

TEST(CheckOracles, DeterminismHoldsOn100RandomConfigs) {
  OracleOptions options;
  options.seed = 42;
  options.dse_configs = 100;  // the acceptance floor: >= 100 random configs
  options.aps_configs = 3;
  options.thread_counts = {1, 2, 8};
  const OracleReport report = run_determinism_oracle(options);
  EXPECT_TRUE(report.passed()) << joined(report.failures);
  // 100 configs x (3 thread counts + 1 warm-cache replay) + APS sweeps.
  EXPECT_GE(report.checks, 403u);
}

TEST(CheckOracles, InvariantRegistryHolds) {
  OracleOptions options;
  options.seed = 42;
  const OracleReport report = run_invariant_oracle(options);
  EXPECT_TRUE(report.passed()) << joined(report.failures);
  EXPECT_GE(report.checks, 100u);
}

TEST(CheckOracles, ToleranceBandJsonRoundTripsShape) {
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "c2b_bands_shape.json").string();
  const std::vector<ToleranceBand> bands{
      {.workload = "w1", .samples = 3, .mean_abs_rel_error = 0.125,
       .max_abs_rel_error = 0.5, .mean_tolerance = 0.6, .max_tolerance = 1.5,
       .passed = true}};
  ASSERT_TRUE(write_tolerance_bands_json(path, bands));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"workload\": \"w1\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"passed\": true"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace c2b::check
