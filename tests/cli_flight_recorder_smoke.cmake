# Smoke test for the flight recorder: a seeded DSE sweep writes a journal,
# `c2b report` replays it into a post-mortem, and the heatmap CSV exists.
# Invoked by ctest with -DC2B_BIN=<c2b> -DWORK_DIR=<scratch dir>.

set(journal "${WORK_DIR}/smoke_journal.jsonl")
set(heatmap "${WORK_DIR}/smoke_heatmap.csv")
file(REMOVE "${journal}" "${heatmap}")

# Blank C2B_SIM_CACHE_DIR: a disk tier warmed by an earlier run would
# serve the whole sweep, and a fully-cached run legitimately journals no
# per-class events — this smoke needs the cold-path sections to exist.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "C2B_SIM_CACHE_DIR="
          "${C2B_BIN}" dse --workload stencil --journal-out "${journal}" --progress=0
  RESULT_VARIABLE dse_rc
  OUTPUT_VARIABLE dse_out
  ERROR_VARIABLE dse_err)
if(NOT dse_rc EQUAL 0)
  message(FATAL_ERROR "c2b dse failed (${dse_rc}):\n${dse_out}\n${dse_err}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "journal file was not written: ${journal}")
endif()

execute_process(
  COMMAND "${C2B_BIN}" report --journal "${journal}" --heatmap-out "${heatmap}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "c2b report failed (${report_rc}):\n${report_out}\n${report_err}")
endif()

foreach(needle
    "== run =="
    "== phase time breakdown =="
    "== cache/batch effectiveness =="
    "== per-class sim time =="
    "== explored space ==")
  string(FIND "${report_out}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "report output missing '${needle}':\n${report_out}")
  endif()
endforeach()

if(NOT EXISTS "${heatmap}")
  message(FATAL_ERROR "heatmap CSV was not written: ${heatmap}")
endif()
file(READ "${heatmap}" heatmap_text)
string(FIND "${heatmap_text}" "n_cores," found)
if(found EQUAL -1)
  message(FATAL_ERROR "heatmap CSV malformed:\n${heatmap_text}")
endif()

message(STATUS "flight recorder smoke OK")
