#include "c2b/sim/dram/scheduler.h"

#include <gtest/gtest.h>

#include "c2b/common/rng.h"

namespace c2b::sim {
namespace {

DramSchedulerConfig config(DramPolicy policy, std::uint32_t queue = 16) {
  DramSchedulerConfig c;
  c.timing = {.banks = 2, .lines_per_row = 8, .t_cas = 10, .t_rcd = 10, .t_rp = 10, .t_bus = 2};
  c.policy = policy;
  c.queue_depth = queue;
  return c;
}

TEST(DramScheduler, EmptyTrace) {
  const auto result = schedule_dram_trace(config(DramPolicy::kFcfs), {});
  EXPECT_EQ(result.stats.requests, 0u);
  EXPECT_TRUE(result.completions.empty());
}

TEST(DramScheduler, SingleRequestTiming) {
  const auto result =
      schedule_dram_trace(config(DramPolicy::kFcfs), {{.line = 0, .arrival = 100}});
  ASSERT_EQ(result.completions.size(), 1u);
  // Empty bank: tRCD + tCAS + bus.
  EXPECT_EQ(result.completions[0].done, 100u + 10 + 10 + 2);
}

TEST(DramScheduler, FcfsPreservesArrivalOrder) {
  std::vector<DramRequest> trace;
  for (std::uint64_t i = 0; i < 16; ++i) trace.push_back({.line = i * 8, .arrival = i});
  const auto result = schedule_dram_trace(config(DramPolicy::kFcfs), trace);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(result.completions[i].start, result.completions[i - 1].start);
}

TEST(DramScheduler, FrFcfsPrefersOpenRow) {
  // Request A opens row 0. B (row 1, same bank) arrives just before C
  // (row 0 again). FR-FCFS serves C before B; FCFS serves B first.
  const std::vector<DramRequest> trace{
      {.line = 0, .arrival = 0},    // row 0
      {.line = 16, .arrival = 1},   // row 2 -> bank 0 conflict
      {.line = 1, .arrival = 2},    // row 0 again (hit if served early)
  };
  const auto fr = schedule_dram_trace(config(DramPolicy::kFrFcfs), trace);
  const auto fcfs = schedule_dram_trace(config(DramPolicy::kFcfs), trace);
  EXPECT_GT(fr.stats.row_hits, fcfs.stats.row_hits);
  EXPECT_LT(fr.completions[2].start, fr.completions[1].start);   // reordered
  EXPECT_GT(fcfs.completions[2].start, fcfs.completions[1].start);  // in order
}

TEST(DramScheduler, FrFcfsImprovesRowHitRatioOnMixedTraffic) {
  Rng rng(5);
  std::vector<DramRequest> trace;
  std::uint64_t cycle = 0;
  // Two interleaved streams: a sequential scan and random disturbances.
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    cycle += rng.uniform_below(3);
    if (rng.bernoulli(0.7)) {
      trace.push_back({.line = seq++, .arrival = cycle});
    } else {
      trace.push_back({.line = 10'000 + rng.uniform_below(4096), .arrival = cycle});
    }
  }
  const auto fr = schedule_dram_trace(config(DramPolicy::kFrFcfs), trace);
  const auto fcfs = schedule_dram_trace(config(DramPolicy::kFcfs), trace);
  EXPECT_GT(fr.stats.row_hit_ratio(), fcfs.stats.row_hit_ratio());
  EXPECT_LE(fr.stats.mean_latency, fcfs.stats.mean_latency * 1.02);
}

TEST(DramScheduler, QueueDepthOneDegeneratesToFcfs) {
  Rng rng(7);
  std::vector<DramRequest> trace;
  std::uint64_t cycle = 0;
  for (int i = 0; i < 300; ++i) {
    cycle += rng.uniform_below(4);
    trace.push_back({.line = rng.uniform_below(512), .arrival = cycle});
  }
  const auto narrow = schedule_dram_trace(config(DramPolicy::kFrFcfs, 1), trace);
  const auto fcfs = schedule_dram_trace(config(DramPolicy::kFcfs, 1), trace);
  ASSERT_EQ(narrow.completions.size(), fcfs.completions.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(narrow.completions[i].start, fcfs.completions[i].start);
    EXPECT_EQ(narrow.completions[i].done, fcfs.completions[i].done);
  }
}

TEST(DramScheduler, AllRequestsComplete) {
  Rng rng(9);
  std::vector<DramRequest> trace;
  for (int i = 0; i < 500; ++i)
    trace.push_back({.line = rng.uniform_below(1 << 14), .arrival = rng.uniform_below(2000)});
  const auto result = schedule_dram_trace(config(DramPolicy::kFrFcfs), trace);
  EXPECT_EQ(result.stats.requests, 500u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(result.completions[i].start, trace[i].arrival);
    EXPECT_GT(result.completions[i].done, result.completions[i].start);
  }
  EXPECT_GT(result.stats.p95_latency, 0.0);
  EXPECT_GE(result.stats.p95_latency, result.stats.mean_latency);
}

TEST(DramScheduler, ValidatesConfig) {
  DramSchedulerConfig bad = config(DramPolicy::kFcfs);
  bad.queue_depth = 0;
  EXPECT_THROW((void)schedule_dram_trace(bad, {{.line = 0, .arrival = 0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace c2b::sim
