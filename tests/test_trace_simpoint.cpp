#include "c2b/trace/simpoint.h"

#include <gtest/gtest.h>

#include <memory>

#include "c2b/trace/generators.h"

namespace c2b {
namespace {

Trace phased_trace(std::uint64_t phase_len, int repeats) {
  std::vector<PhasedGenerator::Phase> phases;
  phases.push_back({std::make_shared<PointerChaseGenerator>(256, 4, 1), phase_len});
  ZipfStreamGenerator::Params zp;
  zp.f_mem = 0.9;
  zp.seed = 2;
  phases.push_back({std::make_shared<ZipfStreamGenerator>(zp), phase_len});
  PhasedGenerator g(std::move(phases));
  return g.generate(2 * phase_len * static_cast<std::uint64_t>(repeats));
}

TEST(SimPoint, FeaturesAreNormalized) {
  const Trace t = phased_trace(1000, 1);
  const auto f = interval_features(t.records.data(), t.records.data() + 1000, 8);
  ASSERT_EQ(f.size(), 3u + 8u);
  EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-9);  // mix fractions sum to 1
  double hist = 0.0;
  for (std::size_t b = 3; b < f.size(); ++b) hist += f[b];
  EXPECT_NEAR(hist, 1.0, 1e-9);  // address histogram normalized
}

TEST(SimPoint, WeightsSumToOne) {
  const Trace t = phased_trace(2000, 4);
  SimPointOptions opt;
  opt.interval_length = 1000;
  opt.max_clusters = 4;
  const SimPointResult r = pick_simpoints(t, opt);
  ASSERT_FALSE(r.points.empty());
  double total = 0.0;
  for (const SimPoint& p : r.points) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoint, TwoPhaseTraceYieldsTwoDominantClusters) {
  const Trace t = phased_trace(4000, 4);
  SimPointOptions opt;
  opt.interval_length = 4000;  // one interval per phase occurrence
  opt.max_clusters = 2;
  const SimPointResult r = pick_simpoints(t, opt);
  ASSERT_EQ(r.points.size(), 2u);
  // Each cluster should hold ~half the intervals.
  for (const SimPoint& p : r.points) EXPECT_NEAR(p.weight, 0.5, 0.15);
  // Alternating phases -> alternating cluster assignment.
  ASSERT_GE(r.interval_cluster.size(), 4u);
  EXPECT_NE(r.interval_cluster[0], r.interval_cluster[1]);
  EXPECT_EQ(r.interval_cluster[0], r.interval_cluster[2]);
}

TEST(SimPoint, UniformTraceCollapsesWeight) {
  StencilGenerator g(64);
  const Trace t = g.generate(32000);
  SimPointOptions opt;
  opt.interval_length = 4000;
  opt.max_clusters = 4;
  const SimPointResult r = pick_simpoints(t, opt);
  // A homogeneous trace should concentrate most weight in few clusters.
  double max_weight = 0.0;
  for (const SimPoint& p : r.points) max_weight = std::max(max_weight, p.weight);
  EXPECT_GT(max_weight, 0.3);
}

TEST(SimPoint, ExtractIntervalBounds) {
  StencilGenerator g(32);
  const Trace t = g.generate(10000);
  const Trace mid = extract_interval(t, 2, 3000);
  EXPECT_EQ(mid.records.size(), 3000u);
  EXPECT_EQ(mid.records[0].address, t.records[6000].address);
  const Trace tail = extract_interval(t, 3, 3000);
  EXPECT_EQ(tail.records.size(), 1000u);  // clipped at the end
  EXPECT_THROW(extract_interval(t, 10, 3000), std::invalid_argument);
}

TEST(SimPoint, WeightedEstimate) {
  SimPointResult r;
  r.points = {{0, 0.25}, {1, 0.75}};
  EXPECT_DOUBLE_EQ(simpoint_weighted_estimate(r, {4.0, 8.0}), 7.0);
  EXPECT_THROW(simpoint_weighted_estimate(r, {1.0}), std::invalid_argument);
}

TEST(SimPoint, DeterministicForSeed) {
  const Trace t = phased_trace(2000, 3);
  SimPointOptions opt;
  opt.interval_length = 1500;
  const SimPointResult a = pick_simpoints(t, opt);
  const SimPointResult b = pick_simpoints(t, opt);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].interval_index, b.points[i].interval_index);
    EXPECT_DOUBLE_EQ(a.points[i].weight, b.points[i].weight);
  }
}

}  // namespace
}  // namespace c2b
