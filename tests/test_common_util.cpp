#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "c2b/common/log.h"
#include "c2b/common/math_util.h"
#include "c2b/common/table.h"

namespace c2b {
namespace {

TEST(MathUtil, AlmostEqual) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(1e9, 1e9 * (1 + 1e-10)));
}

TEST(MathUtil, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(MathUtil, Logspace) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-7);
  EXPECT_DOUBLE_EQ(v[3], 1000.0);
  EXPECT_THROW(logspace(0.0, 10.0, 3), std::invalid_argument);
}

TEST(MathUtil, Pow2Sweep) {
  const auto v = pow2_sweep(1, 1000);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 1000);  // hi appended even when not a power of two
  for (std::size_t i = 1; i + 1 < v.size(); ++i) EXPECT_EQ(v[i], v[i - 1] * 2);
}

TEST(MathUtil, ClampAndPow2Predicates) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(64), 6u);
  EXPECT_EQ(floor_log2(65), 6u);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({std::string("x"), std::int64_t{42}});
  t.add_row({std::string("longer"), 3.14159});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);  // default precision 4
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"col"});
  t.add_row({std::string("plain")});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvCreatesFile) {
  Table t({"x"});
  t.add_row({std::int64_t{1}});
  const std::string path = testing::TempDir() + "/c2b_table_test/out.csv";
  EXPECT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Log, ThresholdFilters) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // These must not crash; output goes to stderr.
  C2B_LOG(LogLevel::kDebug, "test") << "suppressed";
  C2B_LOG(LogLevel::kError, "test") << "visible";
  set_log_threshold(before);
}

}  // namespace
}  // namespace c2b
