#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "c2b/trace/generators.h"
#include "c2b/trace/reuse.h"
#include "c2b/trace/workloads.h"

namespace c2b {
namespace {

TEST(Gups, LoadComputeStoreTriplets) {
  GupsGenerator g(1 << 10, 3);
  const Trace t = g.generate(9);
  for (int i = 0; i < 9; i += 3) {
    EXPECT_EQ(t.records[i].kind, InstrKind::kLoad);
    EXPECT_EQ(t.records[i + 1].kind, InstrKind::kCompute);
    EXPECT_EQ(t.records[i + 2].kind, InstrKind::kStore);
    EXPECT_EQ(t.records[i].address, t.records[i + 2].address);  // read-modify-write
  }
}

TEST(Gups, NearZeroLocality) {
  GupsGenerator g(1 << 14, 7);
  StackDistanceAnalyzer stack(64);
  stack.consume(g.generate(30000));
  // Every store re-touches its load's line (distance 0), so the floor is a
  // ~50% hit ratio; the loads themselves are uniform over 16k lines and a
  // 4k-line cache catches few of them.
  EXPECT_GT(stack.miss_ratio_for(1 << 12), 0.3);
  EXPECT_LT(stack.miss_ratio_for(1 << 12), 0.55);
  EXPECT_GT(stack.miss_ratio_for(1 << 8), stack.miss_ratio_for(1 << 12) - 1e-9);
}

TEST(Gups, DeterministicPerSeedAndResets) {
  GupsGenerator a(1 << 10, 9), b(1 << 10, 9);
  const Trace ta = a.generate(300);
  const Trace tb = b.generate(300);
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(ta.records[i].address, tb.records[i].address);
  a.reset();
  const Trace again = a.generate(300);
  EXPECT_EQ(again.records[17].address, ta.records[17].address);
}

TEST(Reduction, SequentialAddresses) {
  ReductionGenerator g(1000);
  const Trace t = g.generate(8);
  EXPECT_EQ(t.records[0].kind, InstrKind::kLoad);
  EXPECT_EQ(t.records[2].kind, InstrKind::kLoad);
  EXPECT_EQ(t.records[2].address - t.records[0].address, 8u);  // next double
}

TEST(Reduction, WrapsAround) {
  ReductionGenerator g(4);
  const Trace t = g.generate(10);
  EXPECT_EQ(t.records[8].address, t.records[0].address);  // 5th load wraps
}

TEST(Transpose, ReadRowWriteColumn) {
  TransposeGenerator g(64, 8);
  const Trace t = g.generate(4);
  EXPECT_EQ(t.records[0].kind, InstrKind::kLoad);
  EXPECT_EQ(t.records[1].kind, InstrKind::kStore);
  // Consecutive input reads are contiguous, output writes stride by a row.
  EXPECT_EQ(t.records[2].address - t.records[0].address, 8u);
  EXPECT_EQ(t.records[3].address - t.records[1].address, 64u * 8u);
}

TEST(Transpose, CoversBothMatrices) {
  TransposeGenerator g(16, 4);
  const Trace t = g.generate(16 * 16 * 2);
  // 2 matrices x 16x16 doubles = 4096 bytes = 64 lines.
  EXPECT_EQ(t.distinct_lines(64), 64u);
}

TEST(Frontier, MixOfSequentialAndRandom) {
  FrontierGenerator::Params p;
  p.vertices = 1 << 12;
  p.neighbors_per_vertex = 4;
  p.seed = 3;
  FrontierGenerator g(p);
  const Trace t = g.generate(20000);
  EXPECT_GT(t.f_mem(), 0.4);
  // The frontier array is read sequentially: the first load of consecutive
  // refills advances by one element.
  EXPECT_EQ(t.records[0].kind, InstrKind::kLoad);
}

TEST(Frontier, ValidatesParams) {
  FrontierGenerator::Params p;
  p.vertices = 1;
  EXPECT_THROW(FrontierGenerator{p}, std::invalid_argument);
  p.vertices = 64;
  p.neighbors_per_vertex = 0;
  EXPECT_THROW(FrontierGenerator{p}, std::invalid_argument);
}

TEST(NewWorkloads, CatalogEntriesGenerate) {
  for (const WorkloadSpec& spec :
       {make_gups_workload(1 << 12), make_reduction_workload(1 << 12),
        make_transpose_workload(128), make_frontier_workload(1 << 12)}) {
    auto gen = spec.make_generator(1.0, 5);
    const Trace t = gen->generate(4000);
    EXPECT_EQ(t.records.size(), 4000u) << spec.name;
    EXPECT_GT(t.f_mem(), 0.0) << spec.name;
  }
  EXPECT_EQ(workload_catalog().size(), 10u);
}

TEST(NewWorkloads, LocalityOrdering) {
  // Reduction (streaming reuse-none but sequential lines: 8 accesses/line)
  // beats GUPS (random) under a small cache.
  auto miss_at = [](TraceGenerator& g, std::uint64_t lines) {
    StackDistanceAnalyzer stack(64);
    stack.consume(g.generate(30000));
    return stack.miss_ratio_for(lines);
  };
  ReductionGenerator reduction(1 << 14);
  GupsGenerator gups(1 << 14, 5);
  EXPECT_LT(miss_at(reduction, 256), miss_at(gups, 256));
}

}  // namespace
}  // namespace c2b
