// The generators' own contract: every generated value satisfies the domain
// type's validate()/feasibility invariant, and generation is a pure
// function of the Rng stream (replayable from a seed).

#include "c2b/check/generators.h"

#include <gtest/gtest.h>

#include "c2b/aps/dse.h"
#include "c2b/solver/grid.h"

namespace c2b::check {
namespace {

TEST(CheckGenerators, SystemConfigsAlwaysValidate) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    Rng rng(Rng::derive_stream_seed(1, i));
    const sim::SystemConfig config = gen_system_config(rng);  // validates inside
    EXPECT_GE(config.hierarchy.l2_geometry.size_bytes, config.hierarchy.l1_geometry.size_bytes);
    EXPECT_GE(config.core.rob_size, config.core.issue_width);
  }
}

TEST(CheckGenerators, WorkloadSpecsAreUsable) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    Rng rng(Rng::derive_stream_seed(2, i));
    const WorkloadSpec spec = gen_workload_spec(rng);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.uid.empty()) << "catalog factories must fill the uid";
    const Trace trace = spec.make_generator(1.0, 7)->generate(500);
    EXPECT_GT(trace.records.size(), 0u);
  }
}

TEST(CheckGenerators, AreaSplitsRespectMinimumsAndBudget) {
  ChipConstraints chip;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Rng rng(Rng::derive_stream_seed(3, i));
    const double budget = rng.uniform(1.0, 30.0);
    const AreaSplit split = gen_area_split(rng, chip, budget);
    EXPECT_GE(split.a0, chip.min_core_area);
    EXPECT_GE(split.a1, chip.min_l1_area);
    EXPECT_GE(split.a2, chip.min_l2_area);
    EXPECT_LE(split.total(), budget + 1e-12);
  }
}

TEST(CheckGenerators, AreaSplitRejectsImpossibleBudget) {
  ChipConstraints chip;
  Rng rng(4);
  EXPECT_THROW((void)gen_area_split(rng, chip, 0.01), std::invalid_argument);
}

TEST(CheckGenerators, ProfilesAlwaysValidate) {
  for (std::uint64_t i = 0; i < 300; ++i) {
    Rng rng(Rng::derive_stream_seed(5, i));
    (void)gen_app_profile(rng);      // validate() inside
    (void)gen_machine_profile(rng);  // validate() inside
  }
}

TEST(CheckGenerators, ScalingFunctionsEvaluate) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    Rng rng(Rng::derive_stream_seed(6, i));
    const ScalingFunction g = gen_scaling_function(rng);
    EXPECT_NEAR(g(1.0), 1.0, 1e-9) << g.description();
    EXPECT_GT(g(8.0), 0.0);
    EXPECT_FALSE(g.description().empty());
  }
}

TEST(CheckGenerators, DseScenariosAreSmallAndFeasible) {
  for (std::uint64_t i = 0; i < 60; ++i) {
    Rng rng(Rng::derive_stream_seed(7, i));
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    EXPECT_GE(space.size(), 1u);
    EXPECT_LE(space.size(), 64u) << "oracle scenarios must stay sweep-cheap";
    std::size_t feasible = 0;
    space.for_each([&](std::size_t, const std::vector<double>& point) {
      if (design_feasible(scenario.context, point)) ++feasible;
    });
    EXPECT_GE(feasible, 1u) << print_dse_scenario(scenario);
  }
}

TEST(CheckGenerators, GenerationIsReplayableFromSeed) {
  Rng a(Rng::derive_stream_seed(11, 3));
  Rng b(Rng::derive_stream_seed(11, 3));
  EXPECT_EQ(print_dse_scenario(gen_dse_scenario(a)), print_dse_scenario(gen_dse_scenario(b)));

  Rng c(Rng::derive_stream_seed(11, 4));
  // Different stream, (almost surely) different scenario.
  Rng a2(Rng::derive_stream_seed(11, 3));
  EXPECT_NE(print_dse_scenario(gen_dse_scenario(a2)), print_dse_scenario(gen_dse_scenario(c)));
}

TEST(CheckGenerators, TracesStayWithinRequestedSize) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    Rng rng(Rng::derive_stream_seed(12, i));
    const Trace trace = gen_trace(rng, 64);
    EXPECT_LE(trace.records.size(), 64u);
    for (const TraceRecord& record : trace.records)
      EXPECT_LE(static_cast<int>(record.kind), 2);
  }
}

TEST(CheckGenerators, ShrinkTraceOnlyShrinks) {
  Rng rng(13);
  Trace trace = gen_trace(rng, 32);
  while (trace.records.size() < 2) trace = gen_trace(rng, 32);
  for (const Trace& smaller : shrink_trace(trace)) {
    const bool fewer_records = smaller.records.size() < trace.records.size();
    const bool shorter_name = smaller.name.size() < trace.name.size();
    bool zeroed = smaller.records.size() == trace.records.size();
    for (std::size_t i = 0; zeroed && i < smaller.records.size(); ++i)
      zeroed = smaller.records[i].address == 0 || smaller.records[i].address == trace.records[i].address;
    EXPECT_TRUE(fewer_records || shorter_name || zeroed);
  }
}

}  // namespace
}  // namespace c2b::check
