#include "c2b/core/multitask.h"

#include <gtest/gtest.h>

namespace c2b {
namespace {

AppProfile profile(double f_seq, double hit_c, double miss_c) {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.4;
  app.f_seq = f_seq;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::linear();
  app.hit_concurrency = hit_c;
  app.miss_concurrency = miss_c;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile big_chip() {
  MachineProfile machine;
  machine.chip.total_area = 256.0;
  machine.chip.shared_area = 16.0;
  return machine;
}

std::vector<TaskProfile> figure7_tasks() {
  // App 1: large f_seq, C ~ 1 -> deserves few cores.
  // App 2: small f_seq, high C -> deserves many cores.
  // App 3: in between.
  return {
      {.name = "app1_serial_lowC", .app = profile(0.5, 1.0, 1.0), .priority = 1.0},
      {.name = "app2_parallel_highC", .app = profile(0.01, 4.0, 8.0), .priority = 1.0},
      {.name = "app3_middle", .app = profile(0.15, 2.0, 2.0), .priority = 1.0},
  };
}

TEST(MultiTask, AllCoresHandedOut) {
  const MultiTaskResult r = allocate_cores(figure7_tasks(), big_chip(), 32);
  long long total = 0;
  for (const TaskAllocation& a : r.allocations) {
    EXPECT_GE(a.cores, 1);
    total += a.cores;
  }
  EXPECT_EQ(total, 32);
}

TEST(MultiTask, Figure7Ordering) {
  // The paper's qualitative result: app2 (low f_seq, high C) gets the most
  // cores, app1 (high f_seq, low C) the fewest, app3 in between.
  const MultiTaskResult r = allocate_cores(figure7_tasks(), big_chip(), 32);
  ASSERT_EQ(r.allocations.size(), 3u);
  const long long app1 = r.allocations[0].cores;
  const long long app2 = r.allocations[1].cores;
  const long long app3 = r.allocations[2].cores;
  EXPECT_GT(app2, app3);
  EXPECT_GE(app3, app1);
  EXPECT_GT(app2, 2 * app1);
}

TEST(MultiTask, ConcurrencyReportedPerTask) {
  const MultiTaskResult r = allocate_cores(figure7_tasks(), big_chip(), 16);
  EXPECT_LT(r.allocations[0].concurrency_c, r.allocations[1].concurrency_c);
}

TEST(MultiTask, PriorityShiftsCores) {
  auto tasks = figure7_tasks();
  const MultiTaskResult even = allocate_cores(tasks, big_chip(), 24);
  tasks[0].priority = 50.0;  // make the serial app precious
  const MultiTaskResult skewed = allocate_cores(tasks, big_chip(), 24);
  EXPECT_GE(skewed.allocations[0].cores, even.allocations[0].cores);
}

TEST(MultiTask, MinimumOneCoreEach) {
  const MultiTaskResult r = allocate_cores(figure7_tasks(), big_chip(), 3);
  for (const TaskAllocation& a : r.allocations) EXPECT_EQ(a.cores, 1);
  EXPECT_THROW(allocate_cores(figure7_tasks(), big_chip(), 2), std::invalid_argument);
  EXPECT_THROW(allocate_cores({}, big_chip(), 4), std::invalid_argument);
}

TEST(MultiTask, AggregateUtilityIsSumOfTaskUtilities) {
  const MultiTaskResult r = allocate_cores(figure7_tasks(), big_chip(), 12);
  double sum = 0.0;
  for (const TaskAllocation& a : r.allocations) sum += a.throughput;  // priority = 1
  EXPECT_NEAR(r.aggregate_utility, sum, sum * 1e-9);
}

}  // namespace
}  // namespace c2b
