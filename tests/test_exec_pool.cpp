#include "c2b/exec/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace c2b::exec {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.parallel_for(0, kCount, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, RespectsBeginOffsetAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  // sum of 100..199
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);

  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsChunksInAscendingOrderInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(ThreadPool, ParallelMapKeepsInputOrder) {
  ThreadPool pool(8);
  const std::vector<int> out =
      pool.parallel_map<int>(1000, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, MapMatchesSerialBitForBit) {
  // The determinism contract: same chunks, same per-index work, ordered
  // results — a multi-threaded map equals the single-threaded one exactly,
  // including floating point.
  auto work = [](std::size_t i) {
    double x = 1.0 + static_cast<double>(i);
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 1.0 / x;
    return x;
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  const std::vector<double> a = serial.parallel_map<double>(500, work);
  const std::vector<double> b = wide.parallel_map<double>(500, work);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ThreadPool, NestedForkRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Nested fork from inside a chunk: must run serially on this thread
      // (and not deadlock), visiting its whole range.
      std::size_t inner = 0;
      pool.parallel_for(0, 10, [&](std::size_t ilo, std::size_t ihi) {
        inner += ihi - ilo;
      });
      total.fetch_add(inner, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(total.load(), 16u * 10u);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, GrainLowerBoundsChunkSize) {
  ThreadPool pool(4);
  std::atomic<std::size_t> chunks{0};
  pool.parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(hi - lo >= 50 || hi == 100) << lo << ".." << hi;
        chunks.fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/50);
  EXPECT_EQ(chunks.load(), 2u);
}

TEST(ThreadPoolGlobal, SetThreadCountResizesGlobalPool) {
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2u);
  EXPECT_EQ(ThreadPool::global().thread_count(), 2u);
  set_thread_count(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
  set_thread_count(0);  // restore default for other tests in this binary
  EXPECT_GE(thread_count(), 1u);
}

}  // namespace
}  // namespace c2b::exec
