#include "c2b/core/c2bound.h"

#include <gtest/gtest.h>

#include "c2b/core/capacity.h"
#include "c2b/core/miss_model.h"

namespace c2b {
namespace {

AppProfile demo_app() {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.3;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 16;
  app.g = ScalingFunction::power(1.5);
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 2.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

MachineProfile demo_machine() { return MachineProfile{}; }

// ---------------------------------------------------------------------------
// Miss model

TEST(MissModel, PowerLawShape) {
  const MissModel m{.alpha = 0.1, .beta = 0.5, .mr_cap = 1.0, .mr_floor = 0.001};
  // At S == W the floor applies (working set fits).
  EXPECT_DOUBLE_EQ(m.miss_rate(1024, 1024), 0.001);
  // Quarter-capacity doubles the miss rate under beta = 0.5.
  const double mr_half = m.miss_rate(512, 1024);
  const double mr_quarter = m.miss_rate(256, 1024);
  EXPECT_NEAR(mr_quarter / mr_half, std::sqrt(2.0), 1e-9);
}

TEST(MissModel, ClampsToCapAndFloor) {
  const MissModel m{.alpha = 0.5, .beta = 1.0, .mr_cap = 0.9, .mr_floor = 0.01};
  EXPECT_DOUBLE_EQ(m.miss_rate(1, 1 << 20), 0.9);       // cap
  EXPECT_DOUBLE_EQ(m.miss_rate(1 << 21, 1 << 20), 0.01);  // floor
  EXPECT_THROW((void)m.miss_rate(0.0, 10.0), std::invalid_argument);
}

TEST(MissModel, MonotoneInCapacity) {
  const MissModel m{.alpha = 0.08, .beta = 0.6, .mr_cap = 1.0, .mr_floor = 0.0};
  double prev = 1.1;
  for (double s = 64; s <= (1 << 20); s *= 2) {
    const double mr = m.miss_rate(s, 1 << 18);
    EXPECT_LE(mr, prev);
    prev = mr;
  }
}

// ---------------------------------------------------------------------------
// Chip constraints (Eq. 12)

TEST(Chip, AreaBookkeeping) {
  ChipConstraints chip;
  chip.total_area = 100.0;
  chip.shared_area = 10.0;
  chip.validate();
  EXPECT_DOUBLE_EQ(chip.per_core_budget(9.0), 10.0);
  const DesignPoint d{.n_cores = 9, .a0 = 4, .a1 = 2, .a2 = 4};
  EXPECT_NEAR(chip.area_residual(d), 0.0, 1e-12);
  EXPECT_TRUE(chip.feasible(d));
  const DesignPoint over{.n_cores = 9, .a0 = 5, .a1 = 2, .a2 = 4};
  EXPECT_FALSE(chip.feasible(over));
}

TEST(Chip, CapacityConversions) {
  ChipConstraints chip;
  chip.l1_kib_per_area = 16.0;
  chip.line_bytes = 64;
  // 1 area unit -> 16 KiB -> 256 lines.
  EXPECT_DOUBLE_EQ(chip.l1_capacity_lines(1.0), 256.0);
  EXPECT_GT(chip.l2_capacity_lines(1.0), chip.l1_capacity_lines(1.0));  // denser
}

TEST(Chip, MaxCores) {
  ChipConstraints chip;
  chip.total_area = 100.0;
  chip.shared_area = 0.0;
  chip.min_core_area = 0.5;
  chip.min_l1_area = 0.25;
  chip.min_l2_area = 0.25;
  EXPECT_EQ(chip.max_cores(), 100);
}

// ---------------------------------------------------------------------------
// C2BoundModel / Eq. 10

TEST(C2Bound, PerCoreWorkingSet) {
  const C2BoundModel model(demo_app(), demo_machine());
  // Capacity-driven g: per-core working set is constant in N.
  EXPECT_DOUBLE_EQ(model.per_core_working_set(1.0), 1 << 16);
  EXPECT_DOUBLE_EQ(model.per_core_working_set(16.0), 1 << 16);

  AppProfile fixed = demo_app();
  fixed.g = ScalingFunction::fixed();
  const C2BoundModel fixed_model(fixed, demo_machine());
  EXPECT_DOUBLE_EQ(fixed_model.per_core_working_set(16.0), (1 << 16) / 16.0);
}

TEST(C2Bound, EvaluationStructure) {
  const C2BoundModel model(demo_app(), demo_machine());
  const DesignPoint d{.n_cores = 16, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0};
  const Evaluation e = model.evaluate(d);

  // Eq. 10 reassembled by hand.
  const double time_factor = 0.05 + std::pow(16.0, 1.5) * 0.95 / 16.0;
  const double expected =
      1e6 * (e.cpi_exe + 0.3 * e.camat * (1.0 - 0.3)) * time_factor;
  EXPECT_NEAR(e.execution_time, expected, expected * 1e-12);
  EXPECT_NEAR(e.problem_size, 1e6 * std::pow(16.0, 1.5), 1.0);
  EXPECT_NEAR(e.throughput, e.problem_size / e.execution_time, 1e-9);
  EXPECT_GE(e.concurrency_c, 1.0);
  EXPECT_LE(e.camat, e.amat + 1e-12);
  EXPECT_GT(e.speedup_vs_serial, 1.0);
}

TEST(C2Bound, MoreCoreAreaLowersCpiExe) {
  const C2BoundModel model(demo_app(), demo_machine());
  const Evaluation small = model.evaluate({.n_cores = 4, .a0 = 0.5, .a1 = 1.0, .a2 = 2.0});
  const Evaluation big = model.evaluate({.n_cores = 4, .a0 = 4.0, .a1 = 1.0, .a2 = 2.0});
  EXPECT_GT(small.cpi_exe, big.cpi_exe);
}

TEST(C2Bound, MoreCacheAreaLowersCamat) {
  const C2BoundModel model(demo_app(), demo_machine());
  const Evaluation small = model.evaluate({.n_cores = 4, .a0 = 2.0, .a1 = 0.2, .a2 = 0.5});
  const Evaluation big = model.evaluate({.n_cores = 4, .a0 = 2.0, .a1 = 2.0, .a2 = 6.0});
  EXPECT_GT(small.camat, big.camat);
  EXPECT_GT(small.l1_miss_rate, big.l1_miss_rate);
}

TEST(C2Bound, HigherConcurrencyLowersCamat) {
  AppProfile high_c = demo_app();
  high_c.hit_concurrency = 4.0;
  high_c.miss_concurrency = 8.0;
  const C2BoundModel base(demo_app(), demo_machine());
  const C2BoundModel fast(high_c, demo_machine());
  const DesignPoint d{.n_cores = 8, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0};
  EXPECT_GT(base.evaluate(d).camat, fast.evaluate(d).camat);
  EXPECT_GT(fast.evaluate(d).concurrency_c, base.evaluate(d).concurrency_c);
}

TEST(C2Bound, ExecutionTimeGrowsWithFmem) {
  AppProfile hungry = demo_app();
  hungry.f_mem = 0.9;
  const C2BoundModel base(demo_app(), demo_machine());
  const C2BoundModel mem(hungry, demo_machine());
  const DesignPoint d{.n_cores = 8, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0};
  EXPECT_GT(mem.evaluate(d).execution_time, base.evaluate(d).execution_time);
  EXPECT_LT(mem.evaluate(d).throughput, base.evaluate(d).throughput);
}

TEST(C2Bound, GeneralizedObjectiveReducesToSimpleForm) {
  const C2BoundModel model(demo_app(), demo_machine());
  const DesignPoint d{.n_cores = 8, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0};
  // With 2 stages the generalized sum is f_seq*T + g(2)*T*(1-f_seq)/2,
  // i.e. Eq. (8) evaluated at N = 2.
  const Evaluation e = model.evaluate({.n_cores = 2, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0});
  const double per_instr = e.execution_time /
                           (1e6 * (0.05 + model.app().g(2.0) * 0.95 / 2.0));
  const double expected = 0.05 * 1e6 * per_instr +
                          model.app().g(2.0) * 0.95 * 1e6 * per_instr / 2.0;
  EXPECT_NEAR(model.generalized_objective({.n_cores = 2, .a0 = 1.0, .a1 = 1.0, .a2 = 2.0}, 2),
              expected, expected * 1e-9);
  EXPECT_GT(model.generalized_objective(d, 8), 0.0);
  EXPECT_THROW((void)model.generalized_objective(d, 0), std::invalid_argument);
}

TEST(C2Bound, ValidationCatchesBadProfiles) {
  AppProfile bad = demo_app();
  bad.f_mem = 1.5;
  EXPECT_THROW(C2BoundModel(bad, demo_machine()), std::invalid_argument);
  MachineProfile slow = demo_machine();
  slow.memory_latency = 1.0;  // faster than L2: nonsense
  EXPECT_THROW(C2BoundModel(demo_app(), slow), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Capacity bound (Section V)

TEST(Capacity, LinearWorkingSetInversion) {
  // Y(Z) = 2Z: bound = X/2.
  const double bound = capacity_bounded_problem_size([](double z) { return 2.0 * z; }, 1000.0);
  EXPECT_NEAR(bound, 500.0, 0.01);
}

TEST(Capacity, QuadraticWorkingSetInversion) {
  const double bound =
      capacity_bounded_problem_size([](double z) { return z * z; }, 10000.0, 1.0, 1e9);
  EXPECT_NEAR(bound, 100.0, 0.01);
}

TEST(Capacity, DegenerateBrackets) {
  // Nothing fits.
  EXPECT_DOUBLE_EQ(
      capacity_bounded_problem_size([](double) { return 1e12; }, 10.0, 1.0, 1e6), 1.0);
  // Everything fits.
  EXPECT_DOUBLE_EQ(capacity_bounded_problem_size([](double) { return 1.0; }, 10.0, 1.0, 1e6),
                   1e6);
}

TEST(Capacity, RegimeClassification) {
  EXPECT_EQ(classify_problem(100.0, 500.0), BoundRegime::kProcessorBound);
  EXPECT_EQ(classify_problem(1000.0, 500.0), BoundRegime::kMemoryBound);
  // Big-data app: working set exceeds the LLC -> memory bound.
  EXPECT_EQ(classify_workload([](double z) { return z; }, 1 << 15, 1 << 20),
            BoundRegime::kMemoryBound);
  EXPECT_EQ(classify_workload([](double z) { return std::sqrt(z); }, 1 << 15, 1 << 20),
            BoundRegime::kProcessorBound);
}

}  // namespace
}  // namespace c2b
