#include "c2b/serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "c2b/serve/http.h"
#include "c2b/serve/jobs.h"

namespace c2b::serve {
namespace {

namespace fs = std::filesystem;

// All tests poke Server::handle directly — the job manager (runner
// threads, admission, journals) is fully live without a socket, so the
// suite exercises everything but the TCP accept loop.

HttpResponse get(Server& server, const std::string& path, const std::string& query = {}) {
  return server.handle(HttpRequest{"GET", path, query, ""});
}

HttpResponse post(Server& server, const std::string& path, const std::string& body) {
  return server.handle(HttpRequest{"POST", path, "", body});
}

/// Extracts the job id from a 202 submit response ({"id":N,...}).
std::uint64_t job_id(const HttpResponse& response) {
  const auto at = response.body.find("\"id\":");
  EXPECT_NE(at, std::string::npos) << response.body;
  return std::strtoull(response.body.c_str() + at + 5, nullptr, 10);
}

/// Polls GET /jobs/<id> until the state leaves queued/running.
std::string wait_done(Server& server, std::uint64_t id) {
  for (int i = 0; i < 600; ++i) {
    const auto response = get(server, "/jobs/" + std::to_string(id));
    EXPECT_EQ(response.status, 200);
    if (response.body.find("\"status\":\"done\"") != std::string::npos ||
        response.body.find("\"status\":\"failed\"") != std::string::npos)
      return response.body;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ADD_FAILURE() << "job " << id << " never finished";
  return {};
}

const std::string kTinyDse =
    R"({"type":"dse","workload":"stencil","instructions":2000,"per-core-cap":1000})";

TEST(ServeRoutes, HealthzMetricsStatsRespond) {
  Server server(ServerOptions{});
  EXPECT_EQ(get(server, "/healthz").body, "{\"ok\":1}");
  const auto metrics = get(server, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("counters"), std::string::npos);
  const auto stats = get(server, "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"queued\":0"), std::string::npos);
  EXPECT_NE(stats.body.find("\"running_shares\":0"), std::string::npos);
}

TEST(ServeRoutes, UnknownRoutesAndMethodsRejected) {
  Server server(ServerOptions{});
  EXPECT_EQ(get(server, "/no-such-route").status, 404);
  EXPECT_EQ(get(server, "/jobs/99").status, 404);
  EXPECT_EQ(get(server, "/jobs/notanumber").status, 404);
  EXPECT_EQ(post(server, "/metrics", "").status, 405);
  EXPECT_EQ(get(server, "/shutdown").status, 405);
  EXPECT_EQ(server.handle(HttpRequest{"GET", "/jobs", "", ""}).status, 405);
}

TEST(ServeSubmit, MalformedAndUnknownBodiesRejected400) {
  Server server(ServerOptions{});
  EXPECT_EQ(post(server, "/jobs", "not json at all").status, 400);
  EXPECT_EQ(post(server, "/jobs", "{}").status, 400);  // missing type
  EXPECT_EQ(post(server, "/jobs", R"({"type":"teleport"})").status, 400);
  EXPECT_EQ(post(server, "/jobs", R"({"type":"dse","workload":"no-such-workload"})").status,
            400);
  EXPECT_EQ(post(server, "/jobs", R"({"type":"check","family":"no-such-family"})").status,
            400);
  // Nothing above should have reached the queue.
  EXPECT_NE(get(server, "/stats").body.find("\"queued\":0"), std::string::npos);
}

TEST(ServeSubmit, ZeroQueueCapacityRejects429) {
  ServerOptions options;
  options.max_queue = 0;
  Server server(options);
  const auto response = post(server, "/jobs", kTinyDse);
  EXPECT_EQ(response.status, 429);
  EXPECT_NE(response.body.find("queue full"), std::string::npos);
}

TEST(ServeJobs, ConcurrentJobsAllCompleteWithIdenticalResults) {
  ServerOptions options;
  options.max_active = 2;
  Server server(options);
  // Four identical jobs against two runners: all must complete, and the
  // optimum must be bitwise-identical across them regardless of admission
  // interleaving or shared-cache state. (Cache accounting fields like
  // "simulations" legitimately differ — later jobs run warm.)
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto response = post(server, "/jobs", kTinyDse);
    ASSERT_EQ(response.status, 202) << response.body;
    ids.push_back(job_id(response));
  }
  std::vector<std::string> bodies;
  for (const auto id : ids) bodies.push_back(wait_done(server, id));
  const auto field = [](const std::string& body, const std::string& key) {
    const auto at = body.find("\"" + key + "\":");
    EXPECT_NE(at, std::string::npos) << key << " missing in " << body;
    if (at == std::string::npos) return std::string();
    const auto start = at + key.size() + 3;
    return body.substr(start, body.find_first_of(",}", start) - start);
  };
  for (const auto& body : bodies) {
    EXPECT_NE(body.find("\"status\":\"done\""), std::string::npos) << body;
    EXPECT_EQ(field(body, "best_time"), field(bodies[0], "best_time"));
    EXPECT_EQ(field(body, "best_index"), field(bodies[0], "best_index"));
    EXPECT_EQ(field(body, "feasible"), field(bodies[0], "feasible"));
  }
  const auto stats = get(server, "/stats").body;
  EXPECT_NE(stats.find("\"done\":4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"running_shares\":0"), std::string::npos) << stats;
}

TEST(ServeJobs, OverwideShareIsClampedAndStillRuns) {
  ServerOptions options;
  options.max_active = 2;
  options.threads_total = 2;
  Server server(options);
  // A job claiming more threads than exist must be clamped to
  // threads_total and admitted, not deadlocked at the queue front.
  const std::string wide =
      R"({"type":"dse","workload":"stencil","instructions":2000,"per-core-cap":1000,"threads":64})";
  const auto first = post(server, "/jobs", wide);
  ASSERT_EQ(first.status, 202);
  const auto second = post(server, "/jobs", wide);
  ASSERT_EQ(second.status, 202);
  EXPECT_NE(wait_done(server, job_id(first)).find("\"status\":\"done\""),
            std::string::npos);
  EXPECT_NE(wait_done(server, job_id(second)).find("\"status\":\"done\""),
            std::string::npos);
}

TEST(ServeJobs, FailedJobReportsErrorNotCrash) {
  Server server(ServerOptions{});
  // Parses fine (valid type/workload) but fails at execution time.
  const auto response =
      post(server, "/jobs", R"({"type":"dse","workload":"stencil","power-budget":-5})");
  ASSERT_EQ(response.status, 202) << response.body;
  const auto body = wait_done(server, job_id(response));
  EXPECT_NE(body.find("\"status\":\"failed\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"error\":"), std::string::npos) << body;
}

TEST(ServeJobs, EventsEndpointStreamsJournalWithFromCursor) {
  const fs::path spool = fs::path(::testing::TempDir()) / "serve_spool";
  fs::remove_all(spool);
  fs::create_directories(spool);
  ServerOptions options;
  options.spool_dir = spool.string();
  {
    Server server(options);
    const auto response = post(server, "/jobs", kTinyDse);
    ASSERT_EQ(response.status, 202);
    const auto id = job_id(response);
    wait_done(server, id);

    const auto events = get(server, "/jobs/" + std::to_string(id) + "/events");
    EXPECT_EQ(events.status, 200);
    EXPECT_NE(events.body.find("\"type\":\"job_begin\""), std::string::npos)
        << events.body;
    EXPECT_NE(events.body.find("\"type\":\"job_end\""), std::string::npos) << events.body;
    const auto at = events.body.find("\"total\":");
    ASSERT_NE(at, std::string::npos);
    const std::size_t total = std::strtoull(events.body.c_str() + at + 8, nullptr, 10);
    EXPECT_GE(total, 2u);  // at least job_begin + job_end

    // Cursor past the end: valid response, empty slice, cursor echoed.
    const auto tail = get(server, "/jobs/" + std::to_string(id) + "/events",
                          "from=" + std::to_string(total));
    EXPECT_EQ(tail.status, 200);
    EXPECT_NE(tail.body.find("\"from\":" + std::to_string(total)), std::string::npos);
    EXPECT_NE(tail.body.find("\"events\":[]"), std::string::npos) << tail.body;

    // Mid-stream cursor returns strictly fewer events than the full replay.
    const auto slice =
        get(server, "/jobs/" + std::to_string(id) + "/events", "from=1");
    EXPECT_EQ(slice.status, 200);
    EXPECT_EQ(slice.body.find("\"type\":\"job_begin\""), std::string::npos)
        << slice.body;
  }
  fs::remove_all(spool);
}

TEST(ServeJobs, NoSpoolMeansEmptyEventsArray) {
  Server server(ServerOptions{});
  const auto response = post(server, "/jobs", kTinyDse);
  ASSERT_EQ(response.status, 202);
  const auto id = job_id(response);
  wait_done(server, id);
  const auto events = get(server, "/jobs/" + std::to_string(id) + "/events");
  EXPECT_EQ(events.status, 200);
  EXPECT_NE(events.body.find("\"total\":0"), std::string::npos) << events.body;
  EXPECT_NE(events.body.find("\"events\":[]"), std::string::npos) << events.body;
}

TEST(ServeJobs, CheckJobRunsAnOracleFamily) {
  Server server(ServerOptions{});
  const auto response =
      post(server, "/jobs", R"({"type":"check","family":"invariants","seed":7})");
  ASSERT_EQ(response.status, 202) << response.body;
  const auto body = wait_done(server, job_id(response));
  EXPECT_NE(body.find("\"status\":\"done\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"family\":\"invariants\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"failures\":0"), std::string::npos) << body;
}

TEST(ServeShutdown, SubmitAfterShutdownIs503) {
  Server server(ServerOptions{});
  const auto shutdown = post(server, "/shutdown", "");
  EXPECT_EQ(shutdown.status, 200);
  EXPECT_NE(shutdown.body.find("\"draining\":1"), std::string::npos);
  const auto response = post(server, "/jobs", kTinyDse);
  EXPECT_EQ(response.status, 503);
}

}  // namespace
}  // namespace c2b::serve
