// Property tests for the solver layer: Newton on random well-conditioned
// quadratic systems, golden-section bracket containment, and bisection on
// random monotone cubics — randomized inputs, deterministic seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "c2b/check/property.h"
#include "c2b/solver/minimize.h"
#include "c2b/solver/newton.h"

namespace c2b {
namespace {

// Random strictly diagonally dominant SPD-ish quadratic residual
// F(x) = A (x - x*) with condition kept small, so damped Newton must
// converge to x* from a nearby start.
struct QuadraticSystem {
  Matrix a;
  Vector solution;
  Vector start;
};

QuadraticSystem gen_quadratic(Rng& rng, std::size_t dim) {
  QuadraticSystem q;
  q.a = Matrix(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      if (i == j) continue;
      q.a(i, j) = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(q.a(i, j));
    }
    // Strict diagonal dominance bounds the condition number away from
    // singular, which is what "well-conditioned" means here.
    q.a(i, i) = off_sum + rng.uniform(1.0, 3.0);
  }
  q.solution = Vector(dim);
  q.start = Vector(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    q.solution[i] = rng.uniform(-5.0, 5.0);
    q.start[i] = q.solution[i] + rng.uniform(-2.0, 2.0);
  }
  return q;
}

TEST(SolverProps, NewtonConvergesOnRandomQuadratics) {
  check::Property<QuadraticSystem> p;
  p.name = "newton_quadratic_convergence";
  p.generate = [](Rng& rng) {
    return gen_quadratic(rng, static_cast<std::size_t>(rng.uniform_int(1, 4)));
  };
  p.holds = [](const QuadraticSystem& q) -> std::optional<std::string> {
    const ResidualFn residual = [&](const Vector& x) {
      Vector out(q.solution.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = 0.0;
        for (std::size_t j = 0; j < out.size(); ++j)
          out[i] += q.a(i, j) * (x[j] - q.solution[j]);
      }
      return out;
    };
    const NewtonResult result = newton_solve(residual, q.start);
    if (!result.converged) return std::string("did not converge: ") + result.message;
    for (std::size_t i = 0; i < q.solution.size(); ++i)
      if (std::abs(result.x[i] - q.solution[i]) > 1e-6)
        return "x[" + std::to_string(i) + "] off by " +
               std::to_string(std::abs(result.x[i] - q.solution[i]));
    return std::nullopt;
  };

  check::CheckOptions options;
  options.seed = 42;
  options.cases = 100;
  const check::CheckResult result = check::check(p, check::options_from_env(options));
  EXPECT_TRUE(result.passed) << result.summary();
}

struct Bracket {
  double lo = 0.0;
  double hi = 1.0;
  double minimum = 0.5;
};

TEST(SolverProps, GoldenSectionNeverEvaluatesOutsideBracket) {
  check::Property<Bracket> p;
  p.name = "golden_section_bracket_containment";
  p.generate = [](Rng& rng) {
    Bracket b;
    b.lo = rng.uniform(-100.0, 100.0);
    b.hi = b.lo + rng.uniform(1e-6, 200.0);
    b.minimum = rng.uniform(b.lo, b.hi);
    return b;
  };
  p.holds = [](const Bracket& b) -> std::optional<std::string> {
    double out_of_bracket = 0.0;
    const ScalarFn f = [&](double x) {
      if (x < b.lo - 1e-12 || x > b.hi + 1e-12)
        out_of_bracket = std::max({out_of_bracket, b.lo - x, x - b.hi});
      return (x - b.minimum) * (x - b.minimum);
    };
    const ScalarMinResult result = golden_section_minimize(f, b.lo, b.hi);
    if (out_of_bracket > 0.0)
      return "evaluated " + std::to_string(out_of_bracket) + " outside [lo, hi]";
    if (result.x < b.lo - 1e-9 || result.x > b.hi + 1e-9)
      return "returned x outside the bracket";
    const double width = b.hi - b.lo;
    if (std::abs(result.x - b.minimum) > 1e-5 * std::max(1.0, width) + 1e-6)
      return "missed the unimodal minimum by " + std::to_string(std::abs(result.x - b.minimum));
    return std::nullopt;
  };

  check::CheckOptions options;
  options.seed = 42;
  options.cases = 200;
  const check::CheckResult result = check::check(p, check::options_from_env(options));
  EXPECT_TRUE(result.passed) << result.summary();
}

TEST(SolverProps, BisectionFindsRootsOfRandomMonotoneCubics) {
  struct Cubic {
    double a = 1.0, b = 0.0, root = 0.0, lo = -1.0, hi = 1.0;
  };
  check::Property<Cubic> p;
  p.name = "bisection_monotone_cubic";
  p.generate = [](Rng& rng) {
    Cubic c;
    c.a = rng.uniform(0.1, 5.0);   // x^3 coefficient > 0
    c.b = rng.uniform(0.0, 5.0);   // + b x keeps it strictly increasing
    c.root = rng.uniform(-8.0, 8.0);
    c.lo = c.root - rng.uniform(0.5, 20.0);
    c.hi = c.root + rng.uniform(0.5, 20.0);
    return c;
  };
  p.holds = [](const Cubic& c) -> std::optional<std::string> {
    const ScalarFn f = [&](double x) {
      const double d = x - c.root;
      return c.a * d * d * d + c.b * d;
    };
    const BisectResult result = bisect_root(f, c.lo, c.hi);
    if (!result.converged) return std::string("did not converge");
    if (std::abs(result.x - c.root) > 1e-6)
      return "root off by " + std::to_string(std::abs(result.x - c.root));
    return std::nullopt;
  };

  check::CheckOptions options;
  options.seed = 42;
  options.cases = 200;
  const check::CheckResult result = check::check(p, check::options_from_env(options));
  EXPECT_TRUE(result.passed) << result.summary();
}

TEST(SolverProps, IntegerMinimizeIsExactOnRandomConvexSequences) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    Rng rng(Rng::derive_stream_seed(42, i));
    const long long lo = rng.uniform_int(-50, 0);
    const long long hi = rng.uniform_int(1, 50);
    const double center = rng.uniform(static_cast<double>(lo), static_cast<double>(hi));
    const auto f = [&](long long x) {
      const double d = static_cast<double>(x) - center;
      return d * d;
    };
    const IntMinResult result = integer_minimize(f, lo, hi);
    // Exhaustive reference.
    long long best = lo;
    for (long long x = lo; x <= hi; ++x)
      if (f(x) < f(best)) best = x;
    EXPECT_EQ(result.x, best) << "case " << i;
  }
}

}  // namespace
}  // namespace c2b
